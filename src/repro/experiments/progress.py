"""Live progress for executor runs: events, ETA, renderers.

Long sweeps used to run blind until the final table appeared.  The
executor now emits one progress event per state change through an
optional callback:

* ``{"event": "start", ...}`` — once, after the cache scan: total
  cells, how many were served from the cache, worker count;
* ``{"event": "cell", ...}`` — one per executed cell as it completes:
  label, status, attempts, running done/failed/retried counts, and an
  ETA from an exponentially-weighted moving average of cell durations
  (recent cells dominate, so the estimate tracks grids whose cells get
  progressively heavier);
* ``{"event": "rung", ...}`` — one per completed rung of an adaptive
  (successive-halving) sweep: cell counts, scale, survivors, and the
  per-workload leaders so a long search is legible while it narrows;
* ``{"event": "done", ...}`` — once, with the final counters.

ETA skew: the first cell per workload pays trace generation (cold);
later cells reuse the cached trace (warm) and run much faster.  A
single EWMA chases whichever population ran last — early in a sweep it
extrapolates cold costs over mostly-warm remaining work and
overshoots.  The tracker therefore keeps *separate* warm and cold
EWMAs when the caller classifies cells (``cell_event(..., warm=...)``)
and blends them over the expected remaining populations: remaining
cold cells = distinct workloads not yet started (``cold_total``), the
rest warm.  Unclassified cells fall back to the single combined EWMA.

:class:`ProgressTracker` owns the counting and the EWMA; renderers
consume the event dicts: :class:`AnsiRenderer` rewrites one status line
in place on a TTY, :class:`LineRenderer` prints one plain line per
event for pipes and CI logs, and :class:`JsonlWriter` appends each
event verbatim as JSON (``--progress-json``, the machine interface).
Everything renders to *stderr* by convention so the result table on
stdout stays byte-identical to a non-watch run.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, List, Optional


class ProgressTracker:
    """Counts cell completions and estimates time remaining.

    The ETA divides the EWMA cell duration by the worker count: with
    *jobs* workers drawing from one queue, *n* remaining cells take
    roughly ``n * mean / jobs`` wall seconds.
    """

    def __init__(
        self,
        total: int,
        cached: int = 0,
        jobs: int = 1,
        alpha: float = 0.3,
        cold_total: Optional[int] = None,
    ):
        self.total = total
        self.cached = cached
        self.jobs = max(1, jobs)
        self.alpha = alpha
        self.done = cached
        self.failed = 0
        self.retried = 0
        self.ewma_seconds: Optional[float] = None
        #: expected number of cold cells (first execution per workload)
        self.cold_total = cold_total
        self.warm_ewma: Optional[float] = None
        self.cold_ewma: Optional[float] = None
        self.warm_seen = 0
        self.cold_seen = 0

    @property
    def remaining(self) -> int:
        return max(0, self.total - self.done)

    @property
    def eta_seconds(self) -> Optional[float]:
        """Estimated wall seconds to finish, None before any sample.

        With both a warm and a cold sample, the estimate blends the two
        EWMAs over the expected remaining populations; otherwise it
        falls back to the single combined EWMA.
        """
        if self.warm_ewma is not None and self.cold_ewma is not None:
            cold_left = self.remaining
            if self.cold_total is not None:
                cold_left = max(0, self.cold_total - self.cold_seen)
                cold_left = min(cold_left, self.remaining)
            warm_left = self.remaining - cold_left
            blended = cold_left * self.cold_ewma + warm_left * self.warm_ewma
            return round(blended / self.jobs, 3)
        if self.ewma_seconds is None:
            return None
        return round(self.ewma_seconds * self.remaining / self.jobs, 3)

    def start_event(self) -> dict:
        return {
            "event": "start",
            "total": self.total,
            "cached": self.cached,
            "jobs": self.jobs,
        }

    def cell_event(
        self,
        label: str,
        ok: bool,
        seconds: float,
        attempts: int = 1,
        retried: int = 0,
        warm: Optional[bool] = None,
    ) -> dict:
        """Account one completed cell and return its progress event.

        *warm* classifies the cell for the blended ETA: True when the
        workload's trace was already hot (an earlier cell completed on
        it this run), False for a first execution, None when the caller
        cannot tell (single-EWMA fallback).
        """
        self.done += 1
        if not ok:
            self.failed += 1
        self.retried += retried
        if self.ewma_seconds is None:
            self.ewma_seconds = seconds
        else:
            self.ewma_seconds += self.alpha * (seconds - self.ewma_seconds)
        if warm is True:
            self.warm_seen += 1
            if self.warm_ewma is None:
                self.warm_ewma = seconds
            else:
                self.warm_ewma += self.alpha * (seconds - self.warm_ewma)
        elif warm is False:
            self.cold_seen += 1
            if self.cold_ewma is None:
                self.cold_ewma = seconds
            else:
                self.cold_ewma += self.alpha * (seconds - self.cold_ewma)
        event = {
            "event": "cell",
            "label": label,
            "status": "ok" if ok else "failed",
            "seconds": round(seconds, 6),
            "attempts": attempts,
            "done": self.done,
            "total": self.total,
            "failed": self.failed,
            "cached": self.cached,
            "retried": self.retried,
            "eta_seconds": self.eta_seconds,
        }
        if warm is not None:
            event["warm"] = warm
        return event

    def done_event(self, wall_seconds: float) -> dict:
        return {
            "event": "done",
            "total": self.total,
            "done": self.done,
            "failed": self.failed,
            "cached": self.cached,
            "retried": self.retried,
            "wall_seconds": round(wall_seconds, 6),
        }


def _format_eta(eta: Optional[float]) -> str:
    if eta is None:
        return "eta ?"
    if eta >= 60:
        return "eta %dm%02ds" % (int(eta) // 60, int(eta) % 60)
    return "eta %.0fs" % eta


def _format_event(event: dict) -> str:
    kind = event["event"]
    if kind == "start":
        return "sweep: %d cell(s), %d cached, %d worker(s)" % (
            event["total"],
            event["cached"],
            event["jobs"],
        )
    if kind == "cell":
        extras = []
        if event["failed"]:
            extras.append("%d failed" % event["failed"])
        if event["retried"]:
            extras.append("%d retried" % event["retried"])
        extra = (", " + ", ".join(extras)) if extras else ""
        return "[%d/%d] %s %s (%.2fs%s, %s)" % (
            event["done"],
            event["total"],
            event["status"],
            event["label"],
            event["seconds"],
            extra,
            _format_eta(event["eta_seconds"]),
        )
    if kind == "rung":
        leaders = ", ".join(
            "%s=%s" % (workload, policy) for workload, policy, _ in event.get("best", [])
        )
        return "rung %d/%d: %d cell(s) at scale %s, kept %d (%s units)%s" % (
            event["rung"],
            event["rungs"],
            event["cells"],
            event["scale"],
            event["kept"],
            event["units"],
            (" — leading: " + leaders) if leaders else "",
        )
    if kind == "done":
        return "sweep: %d/%d done, %d failed, %d cached, %d retried in %.2fs" % (
            event["done"],
            event["total"],
            event["failed"],
            event["cached"],
            event["retried"],
            event["wall_seconds"],
        )
    return json.dumps(event, sort_keys=True)


class LineRenderer:
    """One plain line per event — pipes, CI logs, non-TTY fallback."""

    def __init__(self, stream: IO[str]):
        self.stream = stream

    def __call__(self, event: dict) -> None:
        self.stream.write(_format_event(event) + "\n")
        self.stream.flush()


class AnsiRenderer:
    """One status line rewritten in place (``\\r`` + erase-to-EOL)."""

    def __init__(self, stream: IO[str]):
        self.stream = stream

    def __call__(self, event: dict) -> None:
        text = _format_event(event)
        if event["event"] == "done":
            self.stream.write("\r\x1b[K" + text + "\n")
        else:
            self.stream.write("\r\x1b[K" + text)
        self.stream.flush()


def make_renderer(stream: IO[str]):
    """ANSI in-place rendering on a TTY, line mode everywhere else."""
    if getattr(stream, "isatty", lambda: False)():
        return AnsiRenderer(stream)
    return LineRenderer(stream)


class JsonlWriter:
    """Append each progress event as one JSON line (``--progress-json``)."""

    def __init__(self, path):
        self.path = Path(path)
        self._fh: Optional[IO[str]] = None

    def __call__(self, event: dict) -> None:
        if self._fh is None:
            self._fh = open(self.path, "w")
        self._fh.write(json.dumps(event, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def fanout(*sinks) -> "Optional[object]":
    """One callback delivering each event to every non-None sink."""
    live: List[object] = [s for s in sinks if s is not None]
    if not live:
        return None

    def deliver(event: dict) -> None:
        for sink in live:
            sink(event)

    return deliver
