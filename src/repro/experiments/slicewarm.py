"""Slice-warming experiment: Prophet-style pre-computation vs priming.

Static MDPT priming (:class:`~repro.multiscalar.policies.
StaticPrimedSyncPolicy`) removes cold-start squashes only for pairs the
symbolic classifier *proves* MUST-alias.  The ``sync_slice_warmed``
policy generalizes it: for every MAY/MUST pair whose address-generation
slice is affordable and loop-carried-free, it pre-executes the slice a
bounded number of instructions ahead of the sequencer and installs the
pair as soon as the slice resolves a collision — before the first
consumer load issues.

This runner compares NEVER / SYNC / PRIMED / SLICEWARM over the Figure 5
SPECint92 workloads plus two adversarial legs:

* ``table-walk`` — a MAY-dominant loop whose recurring dependence is
  data-indexed (the affine classifier cannot prove it), so PRIMED pays
  the same cold-start squash SYNC pays while SLICEWARM resolves it
  ahead of time.
* ``random-adv`` — a dense-shared-region random program that stresses
  the never-worse property on branchy, generator-shaped code.

Shape asserted by the test suite: SLICEWARM's total squashes never
exceed SYNC's on any row, and on the MAY-dominant leg its cold-start
squashes drop below PRIMED's.
"""

from __future__ import annotations

from repro.core.stats import speedup
from repro.experiments.results import ExperimentTable
from repro.experiments.tables import SPECINT92, load_traces
from repro.frontend import run_program
from repro.isa.assembler import Assembler
from repro.multiscalar.config import MultiscalarConfig
from repro.multiscalar.policies import make_policy
from repro.multiscalar.processor import MultiscalarSimulator
from repro.telemetry import PROFILER
from repro.workloads.random_gen import RandomProgramConfig, generate_program

#: policies compared per row, in presentation order
_POLICIES = ("never", "sync", "sync_static_primed", "sync_slice_warmed")


def _table_walk(tasks=16):
    """The worked MAY-dominant example (examples/programs/table_walk.s).

    Each task reads an index from a read-only walk table and increments
    the data counter it picks; the table repeats every index twice, so a
    real store->load dependence recurs at distance 1.  The data address
    is computed from a *loaded* value, which defeats the affine
    classifier (MAY, not MUST) — priming cannot help, slice warming can.
    The data region sits *below* the table: the upward-walking table
    cursor is unbounded above, so the NO-alias proof for the table load
    needs the store range to stay under the table base.
    """
    a = Assembler("table-walk")
    for i in range(tasks):
        a.word(0x3000 + 4 * i, (i // 2) % 8)
    for i in range(8):
        a.word(0x2000 + 4 * i, 0)
    a.li("s1", 0x3000)
    a.li("s2", 0x2000)
    a.li("s3", 0)
    a.li("s4", tasks)
    a.label("loop")
    a.task_begin()
    a.lw("t0", "s1", 0)
    a.sll("t1", "t0", 2)
    a.andi("t1", "t1", 28)
    a.add("t2", "s2", "t1")
    a.lw("t3", "t2", 0)
    a.addi("t3", "t3", 1)
    a.sw("t3", "t2", 0)
    a.addi("s1", "s1", 4)
    a.addi("s3", "s3", 1)
    a.blt("s3", "s4", "loop")
    a.halt()
    return a.assemble()


def _extra_traces(scale):
    """The two adversarial legs, interpreted at the given scale."""
    tasks = {"tiny": 8, "test": 16, "full": 32}.get(scale, 16)
    legs = {}
    with PROFILER.scope("trace-gen"):
        legs["table-walk"] = run_program(_table_walk(tasks))
        legs["random-adv"] = run_program(
            generate_program(
                RandomProgramConfig(
                    tasks=max(tasks, 12),
                    shared_words=4,
                    loads_per_task=2,
                    stores_per_task=2,
                    seed=7,
                )
            )
        )
    return legs


def _run(trace, stages, policy_name):
    """Simulate one (trace, policy) cell; returns (stats, policy)."""
    policy = make_policy(policy_name)
    sim = MultiscalarSimulator(
        trace, MultiscalarConfig(stages=stages), policy
    )
    with PROFILER.scope("simulate"):
        stats = sim.run()
    return stats, policy


def _cold_starts(policy):
    """MDPT entries learned the hard way: allocations minus installs."""
    mdpt = policy.engine.mdpt
    return mdpt.allocations - mdpt.primed


def slice_warming(scale="test", stage_counts=(4, 8)):
    """NEVER/SYNC/PRIMED/SLICEWARM squashes, cold starts, and speedups."""
    table = ExperimentTable(
        "slice-warming",
        "slice-warmed MDPT vs learned SYNC and static priming",
        [
            "stages",
            "benchmark",
            "warmable",
            "installed",
            "slice instr",
            "never_ipc",
            "SYNC",
            "PRIMED",
            "SLICEWARM",
            "missp(sync)",
            "missp(primed)",
            "missp(warmed)",
            "cold(sync)",
            "cold(primed)",
            "cold(warmed)",
        ],
    )
    traces = dict(load_traces(SPECINT92, scale))
    traces.update(_extra_traces(scale))
    for stages in stage_counts:
        for name in sorted(traces):
            trace = traces[name]
            base, _ = _run(trace, stages, "never")
            row = [stages, name]
            missp, cold = {}, {}
            warmed_policy = None
            speedups = []
            for policy_name in _POLICIES[1:]:
                stats, policy = _run(trace, stages, policy_name)
                missp[policy_name] = stats.mis_speculations
                cold[policy_name] = _cold_starts(policy)
                speedups.append(round(speedup(base, stats), 1))
                if policy_name == "sync_slice_warmed":
                    warmed_policy = policy
            if missp["sync_slice_warmed"] > missp["sync"]:
                raise AssertionError(
                    "slice warming must never squash more than SYNC: "
                    "%s at %d stages squashed %d vs %d"
                    % (
                        name,
                        stages,
                        missp["sync_slice_warmed"],
                        missp["sync"],
                    )
                )
            row += [
                warmed_policy.warmable_pairs,
                warmed_policy.installed_pairs,
                warmed_policy.slice_instructions,
                round(base.ipc, 2),
            ]
            row += speedups
            row += [missp[p] for p in _POLICIES[1:]]
            row += [cold[p] for p in _POLICIES[1:]]
            table.add_row(*row)
    table.notes.append(
        "SLICEWARM only installs pairs its pre-executed address slices "
        "actually observe colliding, so it can never squash more than "
        "SYNC: every install front-loads a cold-start squash SYNC would "
        "have paid (the runner asserts this per row)"
    )
    table.notes.append(
        "table-walk is the MAY-dominant leg: its recurring dependence "
        "is data-indexed, so PRIMED's MUST-only proofs leave the same "
        "cold start SYNC pays while SLICEWARM resolves it ahead of need"
    )
    return table
