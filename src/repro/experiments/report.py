"""EXPERIMENTS.md generation: run everything, record paper-vs-measured.

``write_report`` executes every experiment runner and renders a
markdown report that, per table/figure, states what the paper reports,
what this reproduction measures, and whether the qualitative shape
holds.  The repository's checked-in ``EXPERIMENTS.md`` is produced by
this module (see the header it writes).
"""

from __future__ import annotations

import time

from repro.experiments import ALL_EXPERIMENTS

#: What the paper reports, per experiment — rendered next to the
#: reproduced numbers so the comparison is auditable.
PAPER_CLAIMS = {
    "table1": (
        "Dynamic committed instruction counts for SPECint92 (compress, "
        "espresso, gcc, sc, xlisp) and the SPEC95 suites, tens of millions "
        "to billions of instructions.",
        "Our synthetic stand-ins run tens of thousands of instructions "
        "(pure-Python simulation budget); the suite composition matches "
        "1:1 by name.",
    ),
    "table2": (
        "Functional-unit latencies of the simulated processing units "
        "(configuration, not a measurement).",
        "Rendered from the simulator's configuration tables; the paper's "
        "category orderings (simple < complex integer, SP < DP divide) "
        "are asserted by tests/multiscalar/test_config.py.",
    ),
    "window-scaling": (
        "(extension — not in the paper)  Section 2 argues the loss of "
        "blind speculation grows with the window; the paper shows 4 vs "
        "8 stages.",
        "Swept to 2..16 stages: the mean PSYNC-over-ALWAYS gap grows "
        "with the window size.",
    ),
    "table3": (
        "Mis-speculations under the unrealistic OoO model grow sharply "
        "with window size — e.g. moving from an 8- to a 32-instruction "
        "window increases them dramatically.",
        "Counts grow monotonically with the window for all five "
        "benchmarks; small windows see none because our tasks place "
        "dependent pairs tens of instructions apart.",
    ),
    "table4": (
        "Few static store/load pairs are responsible for 99.9% of all "
        "mis-speculations (tens to a few thousand as the window grows).",
        "A handful to ~100 static pairs cover 99.9% at every window size.",
    ),
    "table5": (
        "DDC miss rates fall quickly with capacity; moderate sizes "
        "(128-512 entries) capture most dependences.",
        "Same shape: miss rate is monotone non-increasing in capacity "
        "and small at 512 entries; residual misses are compulsory.",
    ),
    "table6": (
        "The Multiscalar model sees more mis-speculations at 8 stages "
        "than at 4 for every benchmark.",
        "Holds for the majority of kernels; tight-recurrence kernels can "
        "locally invert because wider squashes re-pace the pipeline.",
    ),
    "table7": (
        "Even a 64-entry DDC has a miss rate below ~10% for all "
        "benchmarks; 1024 entries capture virtually all static "
        "dependences except for gcc.",
        "Miss rates are monotone in capacity; absolute levels are "
        "compulsory-dominated at our trace lengths.",
    ),
    "table8": (
        "Most predictions are N/N; ESYNC's N/Y (missed dependences) is "
        "at or below SYNC's for every benchmark; Y/N false dependence "
        "predictions explain SYNC's compress behaviour.",
        "Same bucket structure; ESYNC reduces N/Y on compress and "
        "converts SYNC's stalls into early-satisfied synchronizations.",
    ),
    "table9": (
        "The mechanism reduces mis-speculations by roughly an order of "
        "magnitude, typically below 1% of committed loads.",
        "Aggregate reduction exceeds 5-10x at both window sizes.",
    ),
    "figure5": (
        "ALWAYS significantly outperforms NEVER; PSYNC constantly "
        "improves on ALWAYS and the gap grows from 4 to 8 stages; WAIT "
        "underperforms blind speculation for compress and sc.",
        "All three orderings reproduce; the PSYNC-ALWAYS gap widens at "
        "8 stages, and WAIT loses to ALWAYS on compress (and on sc at "
        "8 stages).",
    ),
    "figure6": (
        "The mechanism approaches ideal (PSYNC): ESYNC never loses to "
        "SYNC; SYNC shows little gain or degradation on compress whose "
        "dependences occur via specific execution paths.",
        "ESYNC ≥ SYNC everywhere and ≈ PSYNC; SYNC trails badly on "
        "compress exactly as the paper describes.",
    ),
    "staticdep": (
        "(extension — not in the paper)  Table 4 shows a small static "
        "set of store/load pairs accounts for nearly all dynamic "
        "mis-speculations, discovered dynamically.",
        "A conservative compile-time reaching-stores analysis "
        "(repro.staticdep) enumerates the candidate pairs before any "
        "simulation: recall vs the dynamic oracle is 1.0 on every "
        "workload (soundness), precision measures the alias noise a "
        "dynamic predictor avoids by construction.",
    ),
    "staticdep-symbolic": (
        "(extension — not in the paper)  Section 4's MDPT learns each "
        "dependence and its DIST tag by paying one mis-speculation; the "
        "paper leaves open how much of that cold-start cost a compiler "
        "could remove.",
        "A symbolic affine interpreter refines the candidate pairs into "
        "MUST/MAY/NO alias verdicts with proven dependence distances: "
        "precision never drops, recall stays 1.0, the static distances "
        "match the oracle's modal task distance on the micro suite, and "
        "seeding the MDPT from always-executing MUST pairs "
        "(sync_static_primed) removes cold-start squashes without ever "
        "adding any.",
    ),
    "spectaint": (
        "(extension — not in the paper)  The paper's squash-and-recover "
        "model treats a mis-speculated load as a purely architectural "
        "event; later transient-execution work showed the squashed value "
        "is a side channel.",
        "A taint lattice over the symbolic interpreter classifies every "
        "static store->load pair as LEAK/GATED/NO-LEAK, and a dynamic "
        "taint sanitizer replays each program to cross-check: the "
        "verdicts are sound (no transient secret read ever lands on a "
        "NO-LEAK pair), blind speculation realizes the predicted leaks, "
        "and sync_static_primed closes every GATED pair — zero "
        "transient secret reads where the naive policy leaks.",
    ),
    "slice-warming": (
        "(extension — not in the paper)  Moshovos' later Prophet line "
        "of work pre-executes address-generation slices to resolve "
        "dependences ahead of the window; the paper's own MDPT learns "
        "each pair only after paying one cold-start squash.",
        "Backward address slices extracted from the program dependence "
        "graph are pre-executed under a per-task instruction budget: "
        "sync_slice_warmed never squashes more than learned SYNC on any "
        "workload/stage cell (asserted by the runner), and on the "
        "MAY-dominant table-walk leg — where MUST-only static priming "
        "is provably blind — it removes the cold-start squashes that "
        "both SYNC and PRIMED pay.",
    ),
    "figure7": (
        "Appreciable gains for most SPECint95 programs (5-40%); ESYNC "
        "close to ideal for m88ksim/compress/li; swim, mgrid and turb3d "
        "have little to gain; su2cor and fpppp fall short of ideal "
        "because the dependence working set exceeds the structures.",
        "Every one of those calls reproduces: streaming kernels gain "
        "~0%, su2cor/fpppp trail PSYNC by a wide margin, and the "
        "int-suite gains are large.",
    ),
}

HEADER = """\
# EXPERIMENTS — paper vs. measured

This file is generated by `repro.experiments.report.write_report`
(`python -m repro.experiments.report [scale] [output]`).  It reruns
every experiment in `repro.experiments` and records the reproduced
tables next to the paper's claims.

Absolute numbers are **not** expected to match the paper: the original
evaluation ran SPEC binaries on a cycle-accurate Multiscalar simulator
for billions of instructions, while this reproduction interprets
synthetic dependence-signature kernels for tens of thousands (see
DESIGN.md for the substitution map).  What must match — and is asserted
by `tests/experiments/test_runners.py` and the benchmark harness — is
the *shape* of every result: who wins, in which order, and where the
crossovers sit.

The report runs serially.  To regenerate individual tables faster, run
them through the parallel executor (`repro experiment all --jobs N
--cache-dir .repro-cache`): the experiment grid fans out across N
worker processes and finished cells are cached, so wall time drops
roughly with the core count on a cold run and to seconds on a warm one
(see docs/parallel.md).  The tables are bit-identical either way.

Scale: `%(scale)s`.  Generated in %(elapsed).0f s.
"""

SECTION = """\

## %(key)s — %(title)s

**Paper:** %(paper)s

**Measured:** %(measured)s

```
%(table)s
```
"""


def write_report(path="EXPERIMENTS.md", scale="test", experiments=None) -> str:
    """Run all experiments and write the markdown report to *path*."""
    start = time.time()
    keys = sorted(experiments or ALL_EXPERIMENTS)
    sections = []
    for key in keys:
        table = ALL_EXPERIMENTS[key](scale)
        paper, measured = PAPER_CLAIMS.get(key, ("(not stated)", "(not stated)"))
        sections.append(
            SECTION
            % {
                "key": key,
                "title": table.title,
                "paper": paper,
                "measured": measured,
                "table": table.to_text(),
            }
        )
    body = HEADER % {"scale": scale, "elapsed": time.time() - start}
    body += "".join(sections)
    with open(path, "w") as fh:
        fh.write(body)
    return body


def main(argv=None) -> int:
    import sys

    argv = sys.argv[1:] if argv is None else argv
    scale = argv[0] if argv else "test"
    path = argv[1] if len(argv) > 1 else "EXPERIMENTS.md"
    write_report(path, scale)
    print("wrote %s (scale=%s)" % (path, scale))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
