"""Dependence profiling utilities.

Aggregates the true-dependence oracle of a trace into per-static-pair
statistics: dynamic counts, instruction and task distance
distributions, and address behaviour.  These are the quantities the
paper reasons about in Sections 3 and 5.3 (dependence distances,
locality, path dependence), exposed as a user-facing analysis API.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class PairProfile:
    """Statistics for one static (store PC, load PC) dependence pair."""

    store_pc: int
    load_pc: int
    dynamic_count: int = 0
    instruction_distances: Counter = field(default_factory=Counter)
    task_distances: Counter = field(default_factory=Counter)
    addresses: Counter = field(default_factory=Counter)

    @property
    def pair(self) -> Tuple[int, int]:
        return (self.store_pc, self.load_pc)

    @property
    def distinct_addresses(self) -> int:
        return len(self.addresses)

    @property
    def distinct_task_distances(self) -> int:
        return len(self.task_distances)

    @property
    def modal_task_distance(self) -> int:
        """The most common task distance — what a DIST tag would learn."""
        return self.task_distances.most_common(1)[0][0]

    def distance_stability(self) -> float:
        """Fraction of dynamic instances at the modal task distance.

        1.0 means a single DIST value always suffices (the mechanism's
        easy case); low values flag pairs like the paper's gcc, whose
        distances the DIST tag cannot pin down.
        """
        if not self.dynamic_count:
            return 0.0
        return self.task_distances[self.modal_task_distance] / self.dynamic_count

    def address_invariant(self) -> bool:
        """True when every instance touches the same address (a scalar
        global) — the case where address tagging cannot disambiguate
        dynamic instances (Section 3)."""
        return self.distinct_addresses == 1


@dataclass
class DependenceProfile:
    """A whole-trace dependence profile."""

    trace_name: str
    pairs: Dict[Tuple[int, int], PairProfile]
    dependent_loads: int
    total_loads: int

    def top_pairs(self, n=10) -> List[PairProfile]:
        """The *n* most frequent pairs."""
        return sorted(
            self.pairs.values(), key=lambda p: p.dynamic_count, reverse=True
        )[:n]

    def pairs_for_coverage(self, coverage=0.999) -> int:
        """Static pairs needed to cover *coverage* of dynamic dependences."""
        if not 0 < coverage <= 1:
            raise ValueError("coverage must be in (0, 1]")
        total = sum(p.dynamic_count for p in self.pairs.values())
        if total == 0:
            return 0
        needed = coverage * total
        covered = 0
        for rank, profile in enumerate(self.top_pairs(len(self.pairs)), start=1):
            covered += profile.dynamic_count
            if covered >= needed:
                return rank
        return len(self.pairs)

    def task_distance_histogram(self) -> Counter:
        """Aggregate task-distance distribution over all pairs."""
        histogram = Counter()
        for profile in self.pairs.values():
            histogram.update(profile.task_distances)
        return histogram

    def unstable_pairs(self, threshold=0.9) -> List[PairProfile]:
        """Pairs whose distance stability falls below *threshold* —
        candidates for mis-synchronization under DIST tagging."""
        return [
            p for p in self.pairs.values() if p.distance_stability() < threshold
        ]

    def summary(self) -> dict:
        return {
            "trace": self.trace_name,
            "loads": self.total_loads,
            "dependent_loads": self.dependent_loads,
            "static_pairs": len(self.pairs),
            "pairs_99_9": self.pairs_for_coverage(0.999),
            "unstable_pairs": len(self.unstable_pairs()),
        }


def profile_dependences(trace) -> DependenceProfile:
    """Build the dependence profile of a trace."""
    # walk only the loads, through the shared columnar index
    index = trace.index()
    producers = index.producers
    c_pc = index.pc
    c_task = index.task_id
    c_addr = index.addr
    pairs: Dict[Tuple[int, int], PairProfile] = {}
    dependent = 0
    load_seqs = index.load_seqs
    total = len(load_seqs)
    for seq in load_seqs:
        store_seq = producers[seq]
        if store_seq is None:
            continue
        dependent += 1
        key = (c_pc[store_seq], c_pc[seq])
        profile = pairs.get(key)
        if profile is None:
            profile = pairs[key] = PairProfile(key[0], key[1])
        profile.dynamic_count += 1
        profile.instruction_distances[seq - store_seq] += 1
        profile.task_distances[c_task[seq] - c_task[store_seq]] += 1
        profile.addresses[c_addr[seq]] += 1
    return DependenceProfile(
        trace_name=trace.name,
        pairs=pairs,
        dependent_loads=dependent,
        total_loads=total,
    )
