"""Trace-level dependence analysis: the unrealistic OoO model and the DDC."""

from repro.oracle.ddc import (
    PAPER_DDC_SIZES_MULTISCALAR,
    PAPER_DDC_SIZES_OOO,
    DataDependenceCache,
    DDCResult,
    simulate_ddc,
    simulate_ddc_sizes,
)
from repro.oracle.profiles import (
    DependenceProfile,
    PairProfile,
    profile_dependences,
)
from repro.oracle.window_model import (
    PAPER_WINDOW_SIZES,
    WindowResult,
    analyze_window,
    analyze_windows,
)

__all__ = [
    "DataDependenceCache",
    "DDCResult",
    "DependenceProfile",
    "PairProfile",
    "profile_dependences",
    "PAPER_DDC_SIZES_MULTISCALAR",
    "PAPER_DDC_SIZES_OOO",
    "PAPER_WINDOW_SIZES",
    "WindowResult",
    "analyze_window",
    "analyze_windows",
    "simulate_ddc",
    "simulate_ddc_sizes",
]
