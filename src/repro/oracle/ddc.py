"""Data Dependence Cache (DDC) — paper Section 5.3.

A DDC of size *n* records the static dependences (store PC, load PC
pairs) that caused the *n* most recent mis-speculations.  On each
mis-speculation the DDC is searched with the offending pair: a hit
means the dependence was seen recently; a low miss rate demonstrates
the temporal locality of the dependences responsible for
mis-speculations — the empirical observation that justifies caching
dependence history in an MDPT of modest size.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Tuple


class DataDependenceCache:
    """An LRU cache of static dependence pairs with hit/miss counters."""

    def __init__(self, capacity):
        if capacity <= 0:
            raise ValueError("DDC capacity must be positive, got %r" % (capacity,))
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple[int, int], None]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self):
        return len(self._entries)

    def __contains__(self, pair):
        return pair in self._entries

    def access(self, pair) -> bool:
        """Record one mis-speculation of *pair*; return True on a hit.

        A hit refreshes the entry's recency; a miss inserts the pair,
        evicting the least recently used entry when full.
        """
        if pair in self._entries:
            self._entries.move_to_end(pair)
            self.hits += 1
            return True
        self.misses += 1
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
        self._entries[pair] = None
        return False

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Miss fraction in [0, 1]; 0.0 for an unused cache."""
        total = self.accesses
        return self.misses / total if total else 0.0

    def reset_counters(self):
        """Clear hit/miss counters but keep cached entries."""
        self.hits = 0
        self.misses = 0


@dataclass
class DDCResult:
    """Miss-rate of one DDC configuration over one event stream."""

    capacity: int
    accesses: int
    misses: int

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def miss_rate_percent(self) -> float:
        return 100.0 * self.miss_rate


def simulate_ddc(events: Iterable[Tuple[int, int]], capacity) -> DDCResult:
    """Replay a mis-speculation event stream through a DDC of *capacity*."""
    cache = DataDependenceCache(capacity)
    for pair in events:
        cache.access(pair)
    return DDCResult(capacity=capacity, accesses=cache.accesses, misses=cache.misses)


def simulate_ddc_sizes(events, capacities) -> dict:
    """Replay the same event stream through several DDC sizes.

    The event stream is materialized once so generators are accepted.
    """
    materialized = list(events)
    return {size: simulate_ddc(materialized, size) for size in capacities}


#: DDC sizes of the paper's Table 5 (unrealistic OoO model).
PAPER_DDC_SIZES_OOO = (32, 128, 512)
#: DDC sizes of the paper's Table 7 (8-stage Multiscalar).
PAPER_DDC_SIZES_MULTISCALAR = (16, 32, 64, 128, 256, 512, 1024)
