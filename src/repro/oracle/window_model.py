"""The paper's "unrealistic" OoO execution model (Section 5).

The model corresponds to a processor that establishes a perfect,
continuous instruction window of a given size *n*: a load is always
mis-speculated if a preceding store on which it is data dependent
appears fewer than *n* instructions earlier in the sequential execution
order.  It is the worst case for the number of mis-speculations and is
used by the paper (Tables 3-5) to characterize the dynamic behaviour of
memory dependences independent of any concrete microarchitecture.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class WindowResult:
    """Dependence statistics of one trace under one window size.

    Attributes:
        trace_name: name of the analyzed program.
        window_size: the window size *n*.
        loads: number of dynamic loads in the trace.
        mis_speculations: dynamic loads whose producing store is fewer
            than *n* instructions earlier (every one of them would be
            mis-speculated under blind speculation in this model).
        pair_counts: per static (store PC, load PC) pair, the number of
            dynamic mis-speculations attributed to it.
        events: the mis-speculation event list in trace order, as
            (store_pc, load_pc) tuples — the input to DDC simulation.
    """

    trace_name: str
    window_size: int
    loads: int
    mis_speculations: int
    pair_counts: Dict[Tuple[int, int], int]
    events: List[Tuple[int, int]] = field(repr=False, default_factory=list)

    @property
    def static_pairs(self) -> int:
        """Number of distinct static store/load pairs that mis-speculate."""
        return len(self.pair_counts)

    def pairs_for_coverage(self, coverage=0.999) -> int:
        """How many static pairs cover *coverage* of mis-speculations.

        This regenerates the paper's Table 4 statistic: the number of
        static dependences responsible for 99.9% of all dynamic
        mis-speculations, counting pairs from most to least frequent.
        """
        if not 0 < coverage <= 1:
            raise ValueError("coverage must be in (0, 1], got %r" % (coverage,))
        if self.mis_speculations == 0:
            return 0
        needed = coverage * self.mis_speculations
        covered = 0
        for rank, count in enumerate(
            sorted(self.pair_counts.values(), reverse=True), start=1
        ):
            covered += count
            if covered >= needed:
                return rank
        return len(self.pair_counts)


def analyze_window(trace, window_size) -> WindowResult:
    """Run the unrealistic OoO model over *trace* for one window size."""
    if window_size <= 0:
        raise ValueError("window size must be positive, got %r" % (window_size,))
    # iterate the shared columnar index (loads only) instead of every
    # TraceEntry: the model touches each dynamic load once per window
    # size, so the attribute chains dominated its runtime
    index = trace.index()
    producers = index.producers
    c_pc = index.pc
    pair_counts: Dict[Tuple[int, int], int] = {}
    events: List[Tuple[int, int]] = []
    mis_speculations = 0
    load_seqs = index.load_seqs
    loads = len(load_seqs)
    for seq in load_seqs:
        store_seq = producers[seq]
        if store_seq is None:
            continue
        if seq - store_seq < window_size:
            mis_speculations += 1
            pair = (c_pc[store_seq], c_pc[seq])
            pair_counts[pair] = pair_counts.get(pair, 0) + 1
            events.append(pair)
    return WindowResult(
        trace_name=trace.name,
        window_size=window_size,
        loads=loads,
        mis_speculations=mis_speculations,
        pair_counts=pair_counts,
        events=events,
    )


def analyze_windows(trace, window_sizes) -> List[WindowResult]:
    """Analyze *trace* under several window sizes (paper uses 8..512)."""
    return [analyze_window(trace, ws) for ws in window_sizes]


#: The window sizes of the paper's Tables 3-5.
PAPER_WINDOW_SIZES = (8, 16, 32, 64, 128, 256, 512)
