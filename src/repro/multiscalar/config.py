"""Multiscalar processor configuration (paper Section 5.2).

The paper simulates 4- and 8-stage Multiscalar processors; each
processing unit is a 5-stage pipeline with 2-way out-of-order issue,
a collection of pipelined functional units, a unidirectional ring with
1-cycle latency between adjacent units, and twice as many interleaved
data banks as units.  The functional-unit latencies follow the paper's
Table 2 categories.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict

from repro.isa.opcodes import FUClass
from repro.memsys.cache import CacheConfig

#: Functional-unit latencies in cycles (paper Table 2; "SP/DP" single and
#: double precision).  The memory latency listed here is address
#: generation only — cache access time comes from the cache model.
#: Registered simulation kernels, in increasing order of specialisation.
#: ``cycle`` and ``event`` name the two issue-scan schedulers of the
#: object kernel; ``batched`` selects the columnar struct-of-arrays
#: kernel (repro.multiscalar.batched) which falls back to the object
#: event path whenever a run needs features it does not support.
KERNELS = ("cycle", "event", "batched")


def active_kernel() -> str:
    """The kernel a default-constructed config would select right now.

    Mirrors the ``MultiscalarConfig`` default chain: ``REPRO_KERNEL``
    wins, then ``REPRO_SCHEDULER``, then the ``event`` default.  Used
    by cache keys and ledger records that must name the kernel without
    building a config.
    """
    return (
        os.environ.get("REPRO_KERNEL", "")
        or os.environ.get("REPRO_SCHEDULER", "")
        or "event"
    )


FU_LATENCIES: Dict[FUClass, int] = {
    FUClass.SIMPLE_INT: 1,
    FUClass.COMPLEX_INT: 4,
    FUClass.BRANCH: 1,
    FUClass.MEMORY: 1,
    FUClass.FP_ADD_SP: 2,
    FUClass.FP_ADD_DP: 2,
    FUClass.FP_MUL_SP: 4,
    FUClass.FP_MUL_DP: 4,
    FUClass.FP_DIV_SP: 12,
    FUClass.FP_DIV_DP: 18,
    FUClass.FP_SQRT_SP: 18,
    FUClass.FP_SQRT_DP: 30,
}

#: Functional units per processing unit (paper: 2 simple integer, 1
#: complex integer, 1 floating point, 1 branch, 1 memory).  All units
#: are pipelined, so the counts bound per-cycle issue per class.
FU_COUNTS: Dict[FUClass, int] = {
    FUClass.SIMPLE_INT: 2,
    FUClass.COMPLEX_INT: 1,
    FUClass.BRANCH: 1,
    FUClass.MEMORY: 1,
    FUClass.FP_ADD_SP: 1,
    FUClass.FP_ADD_DP: 1,
    FUClass.FP_MUL_SP: 1,
    FUClass.FP_MUL_DP: 1,
    FUClass.FP_DIV_SP: 1,
    FUClass.FP_DIV_DP: 1,
    FUClass.FP_SQRT_SP: 1,
    FUClass.FP_SQRT_DP: 1,
}


@dataclass
class MultiscalarConfig:
    """Tunable parameters of the timing simulator.

    Defaults reproduce the paper's 4-stage configuration; pass
    ``stages=8`` for the wide configuration.
    """

    stages: int = 4
    issue_width: int = 2          # per-stage OoO issue width
    fetch_width: int = 2          # instructions fetched per cycle per stage
    rs_window: int = 32           # unissued instructions considered per stage
    ring_hop_latency: int = 1     # cycles per hop between adjacent stages
    dispatch_latency: int = 1     # min cycles between task dispatches
    squash_penalty: int = 4       # restart delay after a dependence squash
    squash_stagger: int = 6       # re-dispatch spacing of squashed tasks
                                  # (sequencer re-walks the task cache)
    mispredict_penalty: int = 6   # sequencer misprediction recovery
    agen_latency: int = 1         # address generation before cache access
    predictor_history: int = 8    # path length of the task predictor
    fu_latencies: Dict[FUClass, int] = field(default_factory=lambda: dict(FU_LATENCIES))
    fu_counts: Dict[FUClass, int] = field(default_factory=lambda: dict(FU_COUNTS))
    # Register dependence speculation (the paper's Section 6 extension):
    #   "oracle"       - perfect dependence knowledge: consumers wait exactly
    #                    for their true producer's ring forward (the default;
    #                    trace-driven simulation makes this free)
    #   "conservative" - no speculation: consumers additionally stall on any
    #                    earlier in-flight task whose code *might* write the
    #                    register (static write-set), until that task's path
    #                    resolves — real Multiscalar register forwarding
    #   "always"       - speculate blindly past unresolved producers and
    #                    maybe-writers; squash when a true write shows up
    #   "predict"      - speculate until a (producer PC, consumer PC) pair
    #                    mis-speculates, then synchronize that pair (an RDPT:
    #                    the MDPT idea applied to register dependences)
    register_speculation: str = "oracle"
    # Model the per-unit 32KB 2-way instruction cache on the fetch path
    # (Section 5.2).  Off by default: fetch is then ideal at fetch_width
    # instructions per cycle.
    model_icache: bool = False
    # Issue-scan scheduling strategy:
    #   "event" - a stage is rescanned only when something that could
    #             change its issue decisions happened (operand wake-ups,
    #             store address/perform thresholds, commits, timed
    #             stalls).  Bit-identical to "cycle" by construction —
    #             scans that are skipped are exactly the provably
    #             no-op ones — and verified by the A/B suite.
    #   "cycle" - the legacy per-cycle rescan of every in-flight stage.
    # The REPRO_SCHEDULER environment variable overrides the default.
    scheduler: str = field(
        default_factory=lambda: os.environ.get("REPRO_SCHEDULER", "event")
    )
    # Simulation kernel:
    #   "cycle"/"event" - the object kernel under the matching scheduler
    #                     (setting these also forces `scheduler`)
    #   "batched"       - the columnar struct-of-arrays kernel
    #                     (repro.multiscalar.batched); `scheduler` is left
    #                     alone because it names the object fallback path
    #                     used when the batched kernel cannot run a config
    # Empty (the default) resolves to `scheduler`, so existing configs
    # and the REPRO_SCHEDULER variable keep their meaning.  The
    # REPRO_KERNEL environment variable overrides the default.
    kernel: str = field(default_factory=lambda: os.environ.get("REPRO_KERNEL", ""))

    def __post_init__(self):
        if self.stages <= 0:
            raise ValueError("stages must be positive")
        if self.issue_width <= 0:
            raise ValueError("issue_width must be positive")
        if self.rs_window <= 0:
            raise ValueError("rs_window must be positive")
        if self.register_speculation not in (
            "oracle",
            "conservative",
            "always",
            "predict",
        ):
            raise ValueError(
                "register_speculation must be oracle/conservative/always/"
                "predict, got %r" % (self.register_speculation,)
            )
        if self.scheduler not in ("event", "cycle"):
            raise ValueError(
                "scheduler must be event or cycle, got %r" % (self.scheduler,)
            )
        if not self.kernel:
            self.kernel = self.scheduler
        elif self.kernel in ("event", "cycle"):
            # the object kernels *are* the schedulers: keep both fields
            # coherent so downstream code can branch on either
            self.scheduler = self.kernel
        elif self.kernel != "batched":
            raise ValueError(
                "kernel must be one of %s, got %r" % ("/".join(KERNELS), self.kernel)
            )

    def make_cache_config(self) -> CacheConfig:
        """Banked data cache: 2x banks per stage, 8 KB each (Section 5.2)."""
        return CacheConfig(banks=2 * self.stages)


def four_stage() -> MultiscalarConfig:
    """The paper's 4-stage configuration."""
    return MultiscalarConfig(stages=4)


def eight_stage() -> MultiscalarConfig:
    """The paper's 8-stage configuration."""
    return MultiscalarConfig(stages=8)
