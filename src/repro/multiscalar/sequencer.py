"""Task sequencer and control-flow prediction.

The Multiscalar sequencer walks the control-flow graph a task at a time,
predicting each task's successor without inspecting the task's
instructions.  The paper uses the path-based scheme of Jacobson et al.
[13] with a return-address stack; this module implements a path-based
predictor — a table indexed by the hashed history of recent task PCs —
plus a small RAS for workloads with task-granularity calls.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple


class ReturnAddressStack:
    """A bounded return-address stack (64 entries in the paper)."""

    def __init__(self, depth=64):
        if depth <= 0:
            raise ValueError("RAS depth must be positive")
        self.depth = depth
        self._stack = []
        self.overflows = 0

    def push(self, pc):
        if len(self._stack) >= self.depth:
            del self._stack[0]
            self.overflows += 1
        self._stack.append(pc)

    def pop(self) -> Optional[int]:
        return self._stack.pop() if self._stack else None

    def __len__(self):
        return len(self._stack)


class PathBasedTaskPredictor:
    """Predicts the next task PC from the path of recent task PCs.

    The table maps a tuple of the last *history* task PCs to the task PC
    that followed it most recently (last-value prediction over paths,
    which is what a path-based two-level scheme degenerates to with
    one-entry counters).
    """

    def __init__(self, history=8, table_size=4096):
        if history <= 0:
            raise ValueError("history must be positive")
        if table_size <= 0:
            raise ValueError("table_size must be positive")
        self.history = history
        self.table_size = table_size
        self._table: Dict[int, Tuple[Tuple[int, ...], int]] = {}
        self._path: Deque[int] = deque(maxlen=history)
        self.predictions = 0
        self.mispredictions = 0

    def _index(self, path) -> int:
        value = 0
        for pc in path:
            value = (value * 1000003 + pc) & 0xFFFFFFFF
        return value % self.table_size

    def predict(self) -> Optional[int]:
        """Predict the PC of the task that follows the current path.

        Returns None when the path is unseen (a compulsory
        misprediction in the accounting).
        """
        path = tuple(self._path)
        slot = self._table.get(self._index(path))
        if slot is None:
            return None
        stored_path, next_pc = slot
        return next_pc if stored_path == path else None

    def record(self, actual_next_pc) -> bool:
        """Compare the prediction with reality, learn, advance the path.

        Returns True when the prediction was correct.
        """
        predicted = self.predict()
        self.predictions += 1
        correct = predicted == actual_next_pc
        if not correct:
            self.mispredictions += 1
        path = tuple(self._path)
        self._table[self._index(path)] = (path, actual_next_pc)
        self._path.append(actual_next_pc)
        return correct

    @property
    def accuracy(self) -> float:
        if not self.predictions:
            return 0.0
        return 1.0 - self.mispredictions / self.predictions
