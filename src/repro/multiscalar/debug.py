"""Execution introspection for the timing simulator.

:class:`TimelineRecorder` hooks a policy to capture per-instruction
issue/completion times, violations, and squashes during a run, and can
render a per-task text timeline — the fastest way to see *why* a policy
wins or loses on a workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.multiscalar.policies import SpeculationPolicy
from repro.multiscalar.processor import MultiscalarSimulator


@dataclass
class ViolationRecord:
    time: int
    store_seq: int
    load_seq: int
    store_pc: int
    load_pc: int
    task_distance: int


class TimelineRecorder(SpeculationPolicy):
    """A policy wrapper that records events while delegating decisions.

    Use::

        recorder = TimelineRecorder(make_policy("esync"))
        sim = MultiscalarSimulator(trace, config, recorder)
        stats = sim.run()
        print(recorder.render(sim, first_task=10, last_task=14))
    """

    def __init__(self, inner: SpeculationPolicy):
        self.inner = inner
        self.violations: List[ViolationRecord] = []
        self.squashes: List[Tuple[int, int]] = []  # (time, first_seq)
        self.load_first_attempt: Dict[int, int] = {}

    @property
    def name(self):
        return "%s+timeline" % self.inner.name

    # -- delegation with recording ----------------------------------------

    def bind(self, sim):
        super().bind(sim)
        self.inner.bind(sim)

    def may_issue_load(self, seq, now):
        self.load_first_attempt.setdefault(seq, now)
        return self.inner.may_issue_load(seq, now)

    def on_store_issued(self, seq, now):
        self.inner.on_store_issued(seq, now)

    def on_store_executed(self, seq, now):
        self.inner.on_store_executed(seq, now)

    def on_violation(self, store_seq, load_seq, now):
        trace = self.sim.trace
        self.violations.append(
            ViolationRecord(
                time=now,
                store_seq=store_seq,
                load_seq=load_seq,
                store_pc=trace[store_seq].pc,
                load_pc=trace[load_seq].pc,
                task_distance=trace[load_seq].task_id - trace[store_seq].task_id,
            )
        )
        self.inner.on_violation(store_seq, load_seq, now)

    def on_squash(self, first_seq, now):
        self.squashes.append((now, first_seq))
        self.inner.on_squash(first_seq, now)

    def on_task_dispatched(self, task_id, now):
        self.inner.on_task_dispatched(task_id, now)

    def on_task_committed(self, task_id, now):
        self.inner.on_task_committed(task_id, now)

    def absolves_violation(self, store_seq, load_seq):
        return self.inner.absolves_violation(store_seq, load_seq)

    def publish_telemetry(self, telemetry):
        self.inner.publish_telemetry(telemetry)

    # -- reporting -----------------------------------------------------------

    def load_wait_cycles(self, sim: MultiscalarSimulator) -> Dict[int, int]:
        """Per dynamic load: cycles between first issue attempt and the
        actual memory access (the cost of gating/synchronization)."""
        waits = {}
        for seq, first in self.load_first_attempt.items():
            done = sim.done[seq]
            if done is None:
                continue
            access_start = done  # completion; relative ordering suffices
            waits[seq] = max(0, access_start - first)
        return waits

    def violation_summary(self) -> Dict[Tuple[int, int], int]:
        """Violations per static (store PC, load PC) pair."""
        counts: Dict[Tuple[int, int], int] = {}
        for record in self.violations:
            key = (record.store_pc, record.load_pc)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def render(self, sim: MultiscalarSimulator, first_task=0, last_task=None, width=64) -> str:
        """A per-task text timeline: dispatch-to-completion bars with
        violation markers."""
        last_task = min(
            sim.n_tasks - 1, last_task if last_task is not None else first_task + 9
        )
        spans = []
        for task_id in range(first_task, last_task + 1):
            times = [sim.done[seq] for seq in sim.tasks[task_id] if sim.done[seq] is not None]
            dispatch = sim._dispatch_time[task_id]
            if not times or dispatch is None:
                continue
            spans.append((task_id, dispatch, max(times)))
        if not spans:
            return "(no completed tasks in range)"
        t0 = min(s[1] for s in spans)
        t1 = max(s[2] for s in spans)
        scale = max(1, (t1 - t0) // width + 1)
        lines = [
            "tasks %d..%d, cycles %d..%d (one column = %d cycle(s))"
            % (first_task, last_task, t0, t1, scale)
        ]
        trace = sim.trace
        for task_id, start, end in spans:
            offset = (start - t0) // scale
            length = max(1, (end - start) // scale)
            bar = " " * offset + "#" * length
            # one "!" per violation whose squashed load belongs to THIS
            # task and was detected inside the task's dispatch..complete
            # span (re-executions can re-violate, so counts can exceed 1)
            count = sum(
                1
                for record in self.violations
                if trace[record.load_seq].task_id == task_id
                and start <= record.time <= end
            )
            lines.append("task %-5d |%s%s" % (task_id, bar, "!" * count))
        if self.violations:
            lines.append("violations: %d (pairs: %s)" % (
                len(self.violations),
                ", ".join(
                    "store@%d->load@%d x%d" % (s, l, c)
                    for (s, l), c in sorted(self.violation_summary().items())
                ),
            ))
        return "\n".join(lines)
