"""Squash explainability: why did each mis-speculation squash happen?

The paper's whole argument is about *removing* squashes, so every one
that survives deserves a structured explanation.  A
:class:`SquashLedger` attaches to a
:class:`~repro.multiscalar.processor.MultiscalarSimulator` (the same
hook pattern as the taint sanitizer) and fires on every dependence
violation — before the squash, while the issued flags still describe
the speculative window — recording one cause per event:

* the static pair (store PC, load PC) and the dynamic tasks involved;
* the dependence distance of this instance;
* the policy's decision context via
  :meth:`~repro.multiscalar.policies.SpeculationPolicy.explain_violation`
  — for the MDPT/MDST mechanism that includes the entry's counter and
  prediction state *at squash time* and the MDST load-parking pressure.

:func:`explain_program` runs a program under a policy with the ledger
attached, cross-references every squashing pair against the symbolic
MUST/MAY/NO alias verdicts, and returns the top-K "why did we squash"
table ``repro explain`` renders.  A squash on a pair the symbolic
analysis *proved* non-aliasing (NO) is a contradiction — either the
analysis or the simulator is wrong — and is flagged as such.

Observation only: attaching a ledger never changes simulated results
(asserted bit-identical in ``tests/multiscalar/test_explain.py``).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class SquashLedger:
    """Per-violation structured causes, aggregated per static pair."""

    def __init__(self):
        self.causes: List[dict] = []
        self.sim = None

    def bind(self, sim) -> "SquashLedger":
        self.sim = sim
        return self

    @property
    def violations(self) -> int:
        return len(self.causes)

    def on_violation(self, store_seq, load_seq, time) -> None:
        """Record one violation (called by the simulator pre-squash)."""
        sim = self.sim
        store = sim.trace[store_seq]
        load = sim.trace[load_seq]
        self.causes.append(
            {
                "store_pc": store.pc,
                "load_pc": load.pc,
                "store_task": store.task_id,
                "load_task": load.task_id,
                "distance": load.task_id - store.task_id,
                "time": time,
                "policy": sim.policy.name,
                "decision": sim.policy.explain_violation(store_seq, load_seq),
            }
        )

    def pair_counts(self) -> Dict[Tuple[int, int], int]:
        counts: Counter = Counter()
        for cause in self.causes:
            counts[(cause["store_pc"], cause["load_pc"])] += 1
        return dict(counts)

    def aggregated(self) -> List[dict]:
        """One record per (store PC, load PC), hottest pair first.

        Carries the squash count, the modal dependence distance, the
        first/last squash times, and the *last* policy decision — the
        predictor state the pair ended the run with.
        """
        by_pair: Dict[Tuple[int, int], List[dict]] = {}
        for cause in self.causes:
            by_pair.setdefault((cause["store_pc"], cause["load_pc"]), []).append(cause)
        out = []
        for (store_pc, load_pc), causes in by_pair.items():
            distances = Counter(c["distance"] for c in causes)
            out.append(
                {
                    "store_pc": store_pc,
                    "load_pc": load_pc,
                    "squashes": len(causes),
                    "modal_distance": distances.most_common(1)[0][0],
                    "distances": {str(d): n for d, n in sorted(distances.items())},
                    "first_time": causes[0]["time"],
                    "last_time": causes[-1]["time"],
                    "policy": causes[-1]["policy"],
                    "last_decision": causes[-1]["decision"],
                }
            )
        out.sort(key=lambda r: (-r["squashes"], r["store_pc"], r["load_pc"]))
        return out


@dataclass
class ExplainReport:
    """The cross-referenced squash table for one (program, policy) run."""

    program: str
    policy: str
    stages: int
    stats: dict
    rows: List[dict] = field(default_factory=list)
    verdict_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def contradictions(self) -> List[dict]:
        """Squashing pairs the symbolic analysis proved non-aliasing."""
        return [row for row in self.rows if row["verdict"] == "no"]

    def top(self, k: int) -> List[dict]:
        return self.rows[: max(0, k)]

    def to_json(self) -> dict:
        return {
            "program": self.program,
            "policy": self.policy,
            "stages": self.stages,
            "stats": self.stats,
            "verdict_counts": self.verdict_counts,
            "pairs": self.rows,
            "contradictions": len(self.contradictions),
        }


def explain_program(
    program,
    policy: str = "esync",
    stages: int = 8,
    config=None,
) -> ExplainReport:
    """Run *program* under *policy* with a squash ledger attached and
    cross-reference every squashing pair against the symbolic verdicts."""
    from repro.frontend.trace_cache import cached_run_program
    from repro.multiscalar.config import MultiscalarConfig
    from repro.multiscalar.policies import make_policy
    from repro.multiscalar.processor import MultiscalarSimulator
    from repro.staticdep import analyze_program_symbolic

    trace = cached_run_program(program)
    ledger = SquashLedger()
    sim = MultiscalarSimulator(
        trace,
        config or MultiscalarConfig(stages=stages),
        make_policy(policy),
        squash_ledger=ledger,
    )
    stats = sim.run()
    analysis = analyze_program_symbolic(program)

    verdict_of: Dict[Tuple[int, int], Optional[str]] = {}
    rows = []
    for record in ledger.aggregated():
        pair = (record["store_pc"], record["load_pc"])
        if pair not in verdict_of:
            classified = analysis.classified_for(*pair)
            verdict_of[pair] = classified.verdict if classified is not None else None
        verdict = verdict_of[pair]
        rows.append(
            dict(
                record,
                verdict=verdict if verdict is not None else "unseen",
                static_distance=_static_distance(analysis, pair),
            )
        )

    counts: Dict[str, int] = {}
    for row in rows:
        counts[row["verdict"]] = counts.get(row["verdict"], 0) + 1
    return ExplainReport(
        program=program.name or "<program>",
        policy=policy,
        stages=stages,
        stats=stats.summary(),
        rows=rows,
        verdict_counts=counts,
    )


def _static_distance(analysis, pair) -> Optional[int]:
    classified = analysis.classified_for(*pair)
    if classified is None:
        return None
    return classified.static_distance
