"""Multiscalar processor substrate: config, sequencer, policies, simulator."""

from repro.multiscalar.debug import TimelineRecorder, ViolationRecord
from repro.multiscalar.explain import ExplainReport, SquashLedger, explain_program
from repro.multiscalar.config import (
    FU_COUNTS,
    FU_LATENCIES,
    KERNELS,
    MultiscalarConfig,
    active_kernel,
    eight_stage,
    four_stage,
)
from repro.multiscalar.policies import (
    AlwaysPolicy,
    MechanismPolicy,
    NeverPolicy,
    PerfectSyncPolicy,
    SpeculationPolicy,
    StaticPrimedSyncPolicy,
    StoreSetPolicy,
    ValueSyncPolicy,
    WaitPolicy,
    available_policies,
    make_policy,
)
from repro.multiscalar.processor import (
    MultiscalarSimulator,
    SimulationError,
    simulate,
)
from repro.multiscalar.sequencer import PathBasedTaskPredictor, ReturnAddressStack

__all__ = [
    "AlwaysPolicy",
    "ExplainReport",
    "FU_COUNTS",
    "FU_LATENCIES",
    "KERNELS",
    "SquashLedger",
    "active_kernel",
    "explain_program",
    "MechanismPolicy",
    "MultiscalarConfig",
    "MultiscalarSimulator",
    "NeverPolicy",
    "PathBasedTaskPredictor",
    "PerfectSyncPolicy",
    "ReturnAddressStack",
    "SimulationError",
    "SpeculationPolicy",
    "StaticPrimedSyncPolicy",
    "StoreSetPolicy",
    "TimelineRecorder",
    "ValueSyncPolicy",
    "ViolationRecord",
    "WaitPolicy",
    "available_policies",
    "eight_stage",
    "four_stage",
    "make_policy",
    "simulate",
]
