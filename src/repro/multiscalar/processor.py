"""The Multiscalar timing simulator.

A trace-driven, cycle-level model of the paper's evaluation vehicle
(Section 5.2): *stages* processing units execute consecutive tasks of
the committed instruction trace; each unit issues up to 2 instructions
per cycle out of order from its task, bounded by per-class functional
units; register values produced in earlier tasks arrive over a
unidirectional ring (1 cycle per hop); loads and stores access a banked
data cache; inter-task memory dependences are speculated according to a
pluggable :class:`~repro.multiscalar.policies.SpeculationPolicy`;
violations squash the offending task and its successors, which then
re-execute.

Being trace-driven, data values are always architecturally correct —
the simulator accounts the *timing* of speculation, synchronization,
squash, and re-execution, which is what the paper's experiments
measure.  Wrong-path instructions after a sequencer misprediction are
not executed; their cost is modeled as a dispatch delay
(``mispredict_penalty`` after the mispredicting task resolves).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional

from repro.core.stats import SpeculationStats
from repro.memsys.cache import BankedCache
from repro.memsys.icache import InstructionCache
from repro.multiscalar.config import MultiscalarConfig
from repro.multiscalar.policies import AlwaysPolicy, SpeculationPolicy
from repro.multiscalar.sequencer import PathBasedTaskPredictor
from repro.telemetry import NULL_TELEMETRY


class SimulationError(Exception):
    """Raised when the simulator cannot make progress (a model bug)."""


class _LazyMinSet:
    """A set of integers with O(log n) amortized minimum queries."""

    def __init__(self, items=()):
        self._set = set(items)
        self._heap = list(self._set)
        heapq.heapify(self._heap)

    def __contains__(self, item):
        return item in self._set

    def add(self, item):
        if item not in self._set:
            self._set.add(item)
            heapq.heappush(self._heap, item)

    def discard(self, item):
        self._set.discard(item)

    def minimum(self) -> Optional[int]:
        heap = self._heap
        while heap and heap[0] not in self._set:
            heapq.heappop(heap)
        return heap[0] if heap else None


class MultiscalarSimulator:
    """Simulates one trace under one configuration and policy."""

    def __init__(
        self,
        trace,
        config=None,
        policy: Optional[SpeculationPolicy] = None,
        telemetry=None,
    ):
        self.trace = trace
        self.config = config or MultiscalarConfig()
        self.policy = policy or AlwaysPolicy()
        self.cache = BankedCache(self.config.make_cache_config())
        self.stats = SpeculationStats()
        # instrumentation is opt-in: the null default makes every sink
        # call a no-op and lets hot paths skip telemetry entirely, so
        # results and runtimes are unchanged when it is off (the A/B
        # test in tests/telemetry/test_ab.py holds the simulator to it)
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._tel_on = self.telemetry.enabled
        self._prepare_static()

    # ------------------------------------------------------------------
    # static preprocessing
    # ------------------------------------------------------------------

    def _prepare_static(self):
        trace = self.trace
        entries = trace.entries
        n = len(entries)
        self.n = n

        # tasks
        self.tasks: List[List[int]] = [
            [e.seq for e in slice_] for slice_ in trace.task_slices()
        ]
        self.n_tasks = len(self.tasks)
        self.task_of = [0] * n
        self.index_in_task = [0] * n
        self.task_pcs = [0] * self.n_tasks
        for t, seqs in enumerate(self.tasks):
            self.task_pcs[t] = entries[seqs[0]].task_pc
            for idx, seq in enumerate(seqs):
                self.task_of[seq] = t
                self.index_in_task[seq] = idx

        # register dataflow per source operand: (register, producer seq or
        # None, penultimate-writer seq or None).  The non-oracle register
        # models also need the producer -> consumers map (violation
        # detection) and per-task-entry static write-sets (conservative
        # maybe-writer stalls).
        reg_mode = self.config.register_speculation
        last_writer: Dict[int, int] = {}
        prev_writer: Dict[int, Optional[int]] = {}
        self.src_operands: List[tuple] = [()] * n
        self.src_producers: List[tuple] = [()] * n
        self.reg_dependents: Dict[int, List[int]] = {}
        for entry in entries:
            inst = entry.inst
            operands = []
            for reg in inst.sources():
                if reg == 0:
                    continue
                producer = last_writer.get(reg)
                operands.append((reg, producer, prev_writer.get(reg)))
                if reg_mode in ("always", "predict") and producer is not None:
                    self.reg_dependents.setdefault(producer, []).append(entry.seq)
            self.src_operands[entry.seq] = tuple(operands)
            self.src_producers[entry.seq] = tuple(
                producer for _, producer, _ in operands if producer is not None
            )
            rd = inst.rd
            if rd is not None and rd != 0:
                prev_writer[rd] = last_writer.get(rd)
                last_writer[rd] = entry.seq

        # static write-set per task entry PC: the registers any dynamic
        # instance of that task writes (what a conservative machine must
        # assume the task may write)
        self.task_writesets: Dict[int, frozenset] = {}
        if reg_mode == "conservative":
            draft: Dict[int, set] = {}
            for task_id, seqs in enumerate(self.tasks):
                regs = draft.setdefault(self.task_pcs[task_id], set())
                for seq in seqs:
                    rd = entries[seq].inst.rd
                    if rd is not None and rd != 0:
                        regs.add(rd)
            self.task_writesets = {
                pc: frozenset(regs) for pc, regs in draft.items()
            }

        # memory dependence oracle
        self.producers = trace.load_producers()
        self.dependents: Dict[int, List[int]] = {}
        for load_seq, store_seq in self.producers.items():
            if store_seq is not None:
                self.dependents.setdefault(store_seq, []).append(load_seq)
        for lst in self.dependents.values():
            lst.sort()

        # per-load list of earlier same-task stores (intra-task gating)
        self.prior_task_stores: Dict[int, List[int]] = {}
        for seqs in self.tasks:
            stores_so_far: List[int] = []
            for seq in seqs:
                entry = entries[seq]
                if entry.is_load and stores_so_far:
                    self.prior_task_stores[seq] = list(stores_so_far)
                if entry.is_store:
                    stores_so_far.append(seq)

        self.all_store_seqs = [e.seq for e in entries if e.is_store]

        # address-generation dataflow for stores: the base register only
        # (a store's address resolves before its data arrives, which is
        # what the NEVER/WAIT policies wait on)
        last_writer.clear()
        self.addr_producer: Dict[int, Optional[int]] = {}
        for entry in entries:
            inst = entry.inst
            if entry.is_store:
                base = inst.rs1
                self.addr_producer[entry.seq] = (
                    last_writer.get(base) if base != 0 else None
                )
            rd = inst.rd
            if rd is not None and rd != 0:
                last_writer[rd] = entry.seq

    # ------------------------------------------------------------------
    # helpers used by policies
    # ------------------------------------------------------------------

    def all_prior_stores_issued(self, seq) -> bool:
        """No store earlier in program order still has an unknown address.

        A store's address is considered known once its base register is
        available and the store has entered its stage's window (address
        generation happens ahead of the data arriving).
        """
        m = self._unknown_addr_stores.minimum()
        return m is None or m >= seq

    def all_prior_stores_executed(self, seq) -> bool:
        """Every store earlier in program order has completed its access."""
        m = self._unexecuted_stores.minimum()
        return m is None or m >= seq

    def producer_pending(self, seq) -> bool:
        """The load's producing store exists and has not issued yet.

        Once a store has issued, its address and data sit in the store
        queue/ARB and a later load can be satisfied by forwarding, so
        "pending" ends at issue, not at completion.
        """
        producer = self.producers.get(seq)
        return producer is not None and not self.issued[producer]

    @property
    def head_task(self) -> int:
        """Index of the oldest uncommitted task."""
        return self._head

    def task_pc_at(self, task_id) -> Optional[int]:
        """Task PC of the task at a given position (ESYNC's path probe)."""
        if 0 <= task_id < self.n_tasks:
            return self.task_pcs[task_id]
        return None

    def squashed_seqs(self, first_seq):
        """All dispatched instruction seqs at or after *first_seq*."""
        first_task = self.task_of[first_seq]
        for t in range(first_task, self._next_dispatch):
            for seq in self.tasks[t]:
                if seq >= first_seq:
                    yield seq

    def classify_load(self, seq, bucket):
        """Buffer a Table-8 classification until the load's task commits."""
        self._pending_class[seq] = bucket

    # ------------------------------------------------------------------
    # simulation
    # ------------------------------------------------------------------

    def run(self) -> SpeculationStats:
        cfg = self.config
        entries = self.trace.entries
        n = self.n

        self.done: List[Optional[int]] = [None] * n
        self.issued = [False] * n
        self.issue_time: List[Optional[int]] = [None] * n
        self._completed = [False] * n  # completion event processed
        self._epoch = [0] * n
        self._reg_spec_mode = cfg.register_speculation
        self._reg_learned = set()  # (producer PC, consumer PC) known dependent
        self._events: List[tuple] = []  # (time, seq, epoch)
        self._pending_class: Dict[int, str] = {}
        self._issue_floor = [0] * self.n_tasks  # re-issue gate after squash

        self._unissued_stores = _LazyMinSet(self.all_store_seqs)
        self._unexecuted_stores = _LazyMinSet(self.all_store_seqs)
        self._unknown_addr_stores = _LazyMinSet(self.all_store_seqs)
        self._store_perform = [0] * n  # time a store's data enters the ARB

        self._dispatch_time: List[Optional[int]] = [None] * self.n_tasks
        self._fetch_time: Dict[int, int] = {}
        self._icaches = (
            [InstructionCache() for _ in range(cfg.stages)]
            if cfg.model_icache
            else None
        )
        self._remaining = [len(seqs) for seqs in self.tasks]
        self._task_unissued: Dict[int, List[int]] = {}
        self._head = 0
        self._next_dispatch = 0
        self._last_dispatch_time = -cfg.dispatch_latency
        self._pending_correct = [True] * (self.n_tasks + 1)

        self.sequencer = PathBasedTaskPredictor(history=cfg.predictor_history)
        self._load_first_attempt: Dict[int, int] = {}
        if self._tel_on:
            trace_sink = self.telemetry.trace
            for stage in range(cfg.stages):
                trace_sink.thread_name(stage, "stage %d" % stage)
        self.policy.bind(self)

        now = 0
        idle_cycles = 0
        latencies = cfg.fu_latencies
        while self._head < self.n_tasks:
            progressed = False
            progressed |= self._process_events(now)
            progressed |= self._try_dispatch(now)
            progressed |= self._issue_phase(now, latencies)
            progressed |= self._try_commit(now)
            if self._head >= self.n_tasks:
                break
            if progressed:
                idle_cycles = 0
                now += 1
                continue
            next_time = self._next_event_time(now)
            if next_time is not None and next_time > now:
                now = next_time
                idle_cycles = 0
            else:
                now += 1
                idle_cycles += 1
                if idle_cycles > 100_000:
                    raise SimulationError(
                        "no progress for %d cycles at t=%d (head task %d of %d)"
                        % (idle_cycles, now, self._head, self.n_tasks)
                    )

        self.stats.cycles = now
        self.stats.control_mispredictions = self.sequencer.mispredictions
        if self._tel_on:
            self._publish_run_metrics()
            self.policy.publish_telemetry(self.telemetry)
        return self.stats

    def _publish_run_metrics(self):
        """End-of-run gauges (simulated-time totals and machine shape)."""
        metrics = self.telemetry.metrics
        stats = self.stats
        metrics.gauge("sim.cycles").set(stats.cycles)
        metrics.gauge("sim.ipc").set(round(stats.ipc, 4))
        metrics.gauge("sim.tasks_committed").set(stats.tasks_committed)
        metrics.gauge("sim.committed_instructions").set(stats.committed_instructions)
        metrics.gauge("sim.squashed_instructions").set(stats.squashed_instructions)
        metrics.gauge("sim.control_mispredictions").set(stats.control_mispredictions)
        metrics.gauge("config.stages").set(self.config.stages)
        metrics.gauge("policy.name").set(self.policy.name)

    # -- dispatch ----------------------------------------------------------

    def _dispatch_ready_time(self, task_id, now) -> Optional[int]:
        base = self._last_dispatch_time + self.config.dispatch_latency
        if self._pending_correct[task_id]:
            return base
        last_prev = self.tasks[task_id - 1][-1]
        resolve = self.done[last_prev]
        if resolve is None or not self.issued[last_prev]:
            return None  # misprediction not resolved yet
        return max(base, resolve + self.config.mispredict_penalty)

    def _try_dispatch(self, now) -> bool:
        progressed = False
        while (
            self._next_dispatch < self.n_tasks
            and self._next_dispatch - self._head < self.config.stages
        ):
            task_id = self._next_dispatch
            ready = self._dispatch_ready_time(task_id, now)
            if ready is None or ready > now:
                break
            self._dispatch_time[task_id] = now
            self._last_dispatch_time = now
            self._task_unissued[task_id] = list(self.tasks[task_id])
            if self._icaches is not None:
                self._schedule_fetch(task_id, now)
            self._next_dispatch += 1
            self.policy.on_task_dispatched(task_id, now)
            if task_id + 1 < self.n_tasks:
                correct = self.sequencer.record(self.task_pcs[task_id + 1])
                self._pending_correct[task_id + 1] = correct
            progressed = True
        return progressed

    # -- issue -------------------------------------------------------------

    def _reg_avail(self, producer, task_id) -> Optional[int]:
        """When *producer*'s value is usable in *task_id*, or None."""
        done = self.done[producer]
        if done is None:
            return None
        producer_task = self.task_of[producer]
        if producer_task != task_id:
            done += self.config.ring_hop_latency * (task_id - producer_task)
        return done

    def _may_speculate_register(self, producer, consumer_seq, task_id) -> bool:
        """Is the consumer allowed to use a stale value for this operand?"""
        mode = self._reg_spec_mode
        if mode in ("oracle", "conservative"):
            return False
        if self.task_of[producer] == task_id:
            return False  # intra-task dependences use the scoreboard
        if mode == "always":
            return True
        pair = (self.trace.entries[producer].pc, self.trace.entries[consumer_seq].pc)
        return pair not in self._reg_learned

    def _maybe_writer_stall(self, reg, producer, task_id, now) -> bool:
        """Conservative forwarding: stall while any earlier in-flight task
        whose static write-set contains *reg* — and which is not the true
        producer's task — has not resolved its path yet."""
        first = self._head
        if producer is not None:
            first = max(first, self.task_of[producer] + 1)
        for other in range(first, task_id):
            if reg not in self.task_writesets.get(self.task_pcs[other], ()):
                continue
            last_seq = self.tasks[other][-1]
            done = self.done[last_seq]
            if done is None or done > now:
                return True
        return False

    def _source_ready_time(self, seq, task_id, now) -> int:
        ready = 0
        conservative = self._reg_spec_mode == "conservative"
        for reg, producer, prev in self.src_operands[seq]:
            if conservative and self._maybe_writer_stall(reg, producer, task_id, now):
                return -1
            if producer is None:
                continue  # value comes with the committed state
            avail = self._reg_avail(producer, task_id)
            if avail is None or avail > now:
                if not self._may_speculate_register(producer, seq, task_id):
                    return -1 if avail is None else (avail if avail > ready else ready)
                # consume the stale (penultimate) value instead
                if prev is None:
                    continue  # stale value comes with committed state
                stale = self._reg_avail(prev, task_id)
                if stale is None:
                    return -1  # not even the stale value exists yet
                avail = stale
            if avail > ready:
                ready = avail
        return ready

    def _schedule_fetch(self, task_id, dispatch_time):
        """Walk the task's instruction stream through the stage's i-cache
        and record each instruction's absolute fetch time."""
        cfg = self.config
        icache = self._icaches[task_id % cfg.stages]
        cursor = dispatch_time
        seqs = self.tasks[task_id]
        entries = self.trace.entries
        block = cfg.fetch_width
        last_line = None
        for group_start in range(0, len(seqs), block):
            pc_addr = entries[seqs[group_start]].pc * 4
            line = pc_addr // icache.config.block_bytes
            if line != last_line:
                latency = icache.access(pc_addr)
                cursor += latency - 1
                last_line = line
            for seq in seqs[group_start : group_start + block]:
                self._fetch_time[seq] = cursor
            cursor += 1

    def _fetch_ready(self, seq, task_id) -> int:
        if self._icaches is not None:
            return self._fetch_time.get(seq, self._dispatch_time[task_id])
        return (
            self._dispatch_time[task_id]
            + self.index_in_task[seq] // self.config.fetch_width
        )

    def _resolve_store_address(self, seq, task_id, now):
        """Mark a store's address as known once its base register is ready."""
        if now < self._issue_floor[task_id]:
            return
        cfg = self.config
        if self._fetch_ready(seq, task_id) > now:
            return
        producer = self.addr_producer.get(seq)
        if producer is not None:
            done = self.done[producer]
            if done is None:
                return
            avail = done
            producer_task = self.task_of[producer]
            if producer_task != task_id:
                avail += cfg.ring_hop_latency * (task_id - producer_task)
            if avail + cfg.agen_latency > now:
                return
        self._unknown_addr_stores.discard(seq)

    def _intra_task_gate(self, seq, addr, now) -> bool:
        """Intra-task dependences are never speculated (Section 5)."""
        for store_seq in self.prior_task_stores.get(seq, ()):
            if store_seq in self._unknown_addr_stores:
                return False
            if self.trace.entries[store_seq].addr == addr:
                done = self.done[store_seq]
                if done is None or done > now:
                    return False
        return True

    def _try_issue(self, seq, task_id, now, counters, latencies) -> bool:
        if now < self._issue_floor[task_id]:
            return False
        entry = self.trace.entries[seq]
        cfg = self.config
        if self._fetch_ready(seq, task_id) > now:
            return False
        src_ready = self._source_ready_time(seq, task_id, now)
        if src_ready < 0 or src_ready > now:
            return False
        cls = entry.inst.fu_class
        if counters.get(cls, 0) >= cfg.fu_counts[cls]:
            return False
        if entry.is_load:
            if not self._intra_task_gate(seq, entry.addr, now):
                return False
            if self._tel_on:
                self._load_first_attempt.setdefault(seq, now)
            if not self.policy.may_issue_load(seq, now):
                if self._tel_on:
                    self.telemetry.metrics.counter("policy.load_denials").inc()
                return False
            if self._tel_on:
                self.telemetry.metrics.counter("policy.load_grants").inc()
        if entry.is_memory:
            completion = self.cache.access(entry.addr, now + cfg.agen_latency)
        else:
            completion = now + latencies[cls]
        counters[cls] = counters.get(cls, 0) + 1
        self.issued[seq] = True
        self.issue_time[seq] = now
        self.done[seq] = completion
        if entry.is_store:
            self._unissued_stores.discard(seq)
            self._unknown_addr_stores.discard(seq)
            self._store_perform[seq] = now + 1
            self.policy.on_store_issued(seq, now)
        if self._tel_on and entry.is_load:
            first = self._load_first_attempt.pop(seq, now)
            wait = now - first
            self.telemetry.metrics.histogram("load.wait_cycles").observe(wait)
            if wait > 0:
                self.telemetry.trace.complete(
                    "load stall pc=%d" % entry.pc,
                    ts=first,
                    dur=wait,
                    tid=task_id % self.config.stages,
                    cat="stall",
                    args={"seq": seq, "pc": entry.pc, "task": task_id},
                )
        heapq.heappush(self._events, (completion, seq, self._epoch[seq]))
        return True

    def _issue_phase(self, now, latencies) -> bool:
        progressed = False
        cfg = self.config
        for task_id in range(self._head, self._next_dispatch):
            if self._dispatch_time[task_id] > now:
                continue
            unissued = self._task_unissued[task_id]
            if not unissued:
                continue
            counters: Dict[object, int] = {}
            issued_count = 0
            kept: List[int] = []
            considered = 0
            for pos, seq in enumerate(unissued):
                if self.issued[seq]:
                    continue  # compaction
                considered += 1
                if considered <= cfg.rs_window and seq in self._unknown_addr_stores:
                    self._resolve_store_address(seq, task_id, now)
                if considered > cfg.rs_window or issued_count >= cfg.issue_width:
                    kept.append(seq)
                    kept.extend(
                        s for s in unissued[pos + 1 :] if not self.issued[s]
                    )
                    break
                if self._try_issue(seq, task_id, now, counters, latencies):
                    issued_count += 1
                    progressed = True
                else:
                    kept.append(seq)
            self._task_unissued[task_id] = kept
        return progressed

    # -- completion events ---------------------------------------------------

    def _process_events(self, now) -> bool:
        progressed = False
        events = self._events
        while events and events[0][0] <= now:
            time, seq, epoch = heapq.heappop(events)
            if epoch != self._epoch[seq] or not self.issued[seq]:
                continue  # stale (squashed) event
            progressed = True
            self._completed[seq] = True
            self._remaining[self.task_of[seq]] -= 1
            entry = self.trace.entries[seq]
            if entry.is_store:
                self._unexecuted_stores.discard(seq)
                violator = self._find_violation(seq, time)
                if violator is not None:
                    self._handle_violation(seq, violator, time)
            if self._reg_spec_mode in ("always", "predict") and entry.inst.rd not in (None, 0):
                violator = self._find_register_violation(seq, time)
                if violator is not None:
                    self._handle_register_violation(seq, violator, time)
        return progressed

    def _find_register_violation(self, producer, time) -> Optional[int]:
        """Earliest consumer that issued before this producer's value
        could have reached it (it used a stale register value)."""
        producer_task = self.task_of[producer]
        for consumer in self.reg_dependents.get(producer, ()):
            consumer_task = self.task_of[consumer]
            if consumer_task <= producer_task:
                continue
            if consumer_task >= self._next_dispatch:
                break
            if consumer_task < self._head:
                continue
            issued_at = self.issue_time[consumer]
            if not self.issued[consumer] or issued_at is None:
                continue
            real_avail = time + self.config.ring_hop_latency * (
                consumer_task - producer_task
            )
            if issued_at < real_avail:
                return consumer
        return None

    def squash_for_value_mismatch(self, load_seq, now):
        """A value-speculated load was verified wrong: squash it and
        everything younger (used by the VSYNC extension policy)."""
        self.stats.value_mis_speculations += 1
        restart = now + self.config.squash_penalty
        self._squash_from_seq(load_seq, restart)

    def _handle_register_violation(self, producer, consumer, time):
        self.stats.register_mis_speculations += 1
        if self._tel_on:
            self.telemetry.metrics.counter("sim.register_mis_speculations").inc()
            self.telemetry.trace.instant(
                "register violation",
                ts=time,
                tid=self.task_of[consumer] % self.config.stages,
                cat="violation",
                args={
                    "producer_pc": self.trace.entries[producer].pc,
                    "consumer_pc": self.trace.entries[consumer].pc,
                },
            )
        pair = (
            self.trace.entries[producer].pc,
            self.trace.entries[consumer].pc,
        )
        self._reg_learned.add(pair)
        restart = time + self.config.squash_penalty
        self._squash_from_seq(consumer, restart)

    def _find_violation(self, store_seq, time) -> Optional[int]:
        """Earliest load violated by this store's execution, if any."""
        store_task = self.task_of[store_seq]
        for load_seq in self.dependents.get(store_seq, ()):
            load_task = self.task_of[load_seq]
            if load_task <= store_task:
                continue
            if load_task >= self._next_dispatch:
                break  # not dispatched yet; later dependents are younger
            if load_task < self._head:
                continue  # already committed (cannot happen; guard anyway)
            done = self.done[load_seq]
            if done is not None and done < self._store_perform[store_seq]:
                # the load performed before the store's data entered the
                # ARB: it read stale data.  Loads completing at or after
                # the store's perform time are satisfied by forwarding.
                if self.policy.absolves_violation(store_seq, load_seq):
                    continue  # e.g. a correctly value-predicted load
                return load_seq
        return None

    def _handle_violation(self, store_seq, load_seq, time):
        self.stats.mis_speculations += 1
        self.stats.breakdown.ny += 1
        if self._tel_on:
            entries = self.trace.entries
            self.telemetry.metrics.counter("sim.mis_speculations").inc()
            self.telemetry.trace.instant(
                "violation store@%d->load@%d"
                % (entries[store_seq].pc, entries[load_seq].pc),
                ts=time,
                tid=self.task_of[load_seq] % self.config.stages,
                cat="violation",
                args={
                    "store_pc": entries[store_seq].pc,
                    "load_pc": entries[load_seq].pc,
                    "distance": self.task_of[load_seq] - self.task_of[store_seq],
                },
            )
        self.policy.on_violation(store_seq, load_seq, time)
        restart = time + self.config.squash_penalty
        self._squash_from_seq(load_seq, restart)
        # the store itself survives; let it signal for the re-execution
        self.policy.on_store_executed(store_seq, time)

    def _squash_from_seq(self, first_seq, restart):
        """Squash the violating load and every younger instruction.

        Per the paper (Section 4.3), the instructions *following the
        load* are squashed and re-issued: older instructions of the
        load's own task keep their results, so the task's tail — often
        including the producers of younger tasks' recurrences —
        re-executes immediately.  Younger tasks restart staggered by the
        sequencer's re-walk rate.
        """
        cfg = self.config
        first_task = self.task_of[first_seq]
        squashed_before = self.stats.squashed_instructions
        for task_id in range(first_task, self._next_dispatch):
            reset_any = False
            for seq in self.tasks[task_id]:
                if seq < first_seq:
                    continue
                reset_any = True
                if self.issued[seq]:
                    self.stats.squashed_instructions += 1
                if self._completed[seq]:
                    self._remaining[task_id] += 1
                    self._completed[seq] = False
                self._epoch[seq] += 1
                self.issued[seq] = False
                self.issue_time[seq] = None
                self.done[seq] = None
                self._pending_class.pop(seq, None)
                if self._tel_on:
                    self._load_first_attempt.pop(seq, None)
                entry = self.trace.entries[seq]
                if entry.is_store:
                    self._unissued_stores.add(seq)
                    self._unexecuted_stores.add(seq)
                    self._unknown_addr_stores.add(seq)
            if not reset_any:
                continue
            self._task_unissued[task_id] = [
                s for s in self.tasks[task_id] if not self.issued[s]
            ]
            offset = task_id - first_task
            self._issue_floor[task_id] = restart + offset * cfg.squash_stagger
        if self._tel_on:
            depth = self.stats.squashed_instructions - squashed_before
            self.telemetry.metrics.counter("sim.squashes").inc()
            self.telemetry.metrics.histogram("squash.depth").observe(depth)
            self.telemetry.trace.instant(
                "squash from seq %d" % first_seq,
                ts=restart,
                tid=first_task % cfg.stages,
                cat="squash",
                args={"first_seq": first_seq, "squashed_instructions": depth},
            )
        self.policy.on_squash(first_seq, restart)

    # -- commit ---------------------------------------------------------------

    def _try_commit(self, now) -> bool:
        progressed = False
        while self._head < self.n_tasks and self._remaining[self._head] == 0:
            task_id = self._head
            for seq in self.tasks[task_id]:
                entry = self.trace.entries[seq]
                self.stats.committed_instructions += 1
                if entry.is_load:
                    self.stats.committed_loads += 1
                    bucket = self._pending_class.pop(seq, "nn")
                    setattr(
                        self.stats.breakdown,
                        bucket,
                        getattr(self.stats.breakdown, bucket) + 1,
                    )
                elif entry.is_store:
                    self.stats.committed_stores += 1
            self.stats.tasks_committed += 1
            if self._tel_on:
                dispatch = self._dispatch_time[task_id]
                self.telemetry.trace.complete(
                    "task %d" % task_id,
                    ts=dispatch,
                    dur=max(1, now - dispatch),
                    tid=task_id % self.config.stages,
                    cat="task",
                    args={
                        "task_pc": self.task_pcs[task_id],
                        "instructions": len(self.tasks[task_id]),
                    },
                )
            self.policy.on_task_committed(task_id, now)
            self._head += 1
            progressed = True
        return progressed

    # -- time management --------------------------------------------------------

    def _next_event_time(self, now) -> Optional[int]:
        candidates = []
        events = self._events
        while events:
            time, seq, epoch = events[0]
            if epoch != self._epoch[seq] or not self.issued[seq]:
                heapq.heappop(events)
                continue
            candidates.append(time)
            break
        if (
            self._next_dispatch < self.n_tasks
            and self._next_dispatch - self._head < self.config.stages
        ):
            ready = self._dispatch_ready_time(self._next_dispatch, now)
            if ready is not None:
                candidates.append(ready)
        for task_id in range(self._head, self._next_dispatch):
            dt = self._dispatch_time[task_id]
            if dt is not None and dt > now:
                candidates.append(dt)
            floor = self._issue_floor[task_id]
            if floor > now and self._task_unissued.get(task_id):
                candidates.append(floor)
        future = [c for c in candidates if c > now]
        return min(future) if future else None


def simulate(trace, config=None, policy=None) -> SpeculationStats:
    """Convenience wrapper: run one simulation and return its stats."""
    return MultiscalarSimulator(trace, config=config, policy=policy).run()
