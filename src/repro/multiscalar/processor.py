"""The Multiscalar timing simulator.

A trace-driven, cycle-level model of the paper's evaluation vehicle
(Section 5.2): *stages* processing units execute consecutive tasks of
the committed instruction trace; each unit issues up to 2 instructions
per cycle out of order from its task, bounded by per-class functional
units; register values produced in earlier tasks arrive over a
unidirectional ring (1 cycle per hop); loads and stores access a banked
data cache; inter-task memory dependences are speculated according to a
pluggable :class:`~repro.multiscalar.policies.SpeculationPolicy`;
violations squash the offending task and its successors, which then
re-execute.

Being trace-driven, data values are always architecturally correct —
the simulator accounts the *timing* of speculation, synchronization,
squash, and re-execution, which is what the paper's experiments
measure.  Wrong-path instructions after a sequencer misprediction are
not executed; their cost is modeled as a dispatch delay
(``mispredict_penalty`` after the mispredicting task resolves).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional

from repro.core.stats import SpeculationStats
from repro.frontend.static_index import FU_ORDER, NUM_FU_CLASSES, TraceIndex
from repro.memsys.cache import BankedCache
from repro.memsys.icache import InstructionCache
from repro.multiscalar.config import MultiscalarConfig
from repro.multiscalar.policies import (
    WAKE_ADDR_MIN,
    WAKE_COMMIT,
    WAKE_EXEC_MIN,
    WAKE_ISSUE,
    WAKE_RESOLVE,
    WAKE_TIME,
    AlwaysPolicy,
    SpeculationPolicy,
)
from repro.multiscalar.sequencer import PathBasedTaskPredictor
from repro.telemetry import NULL_TELEMETRY

_INF = float("inf")


class SimulationError(Exception):
    """Raised when the simulator cannot make progress (a model bug)."""


class _LazyMinSet:
    """A set of integers with O(log n) amortized minimum queries."""

    def __init__(self, items=()):
        self._set = set(items)
        self._heap = list(self._set)
        heapq.heapify(self._heap)

    def __contains__(self, item):
        return item in self._set

    def add(self, item):
        if item not in self._set:
            self._set.add(item)
            heapq.heappush(self._heap, item)

    def discard(self, item):
        self._set.discard(item)

    def minimum(self) -> Optional[int]:
        heap = self._heap
        while heap and heap[0] not in self._set:
            heapq.heappop(heap)
        return heap[0] if heap else None


class MultiscalarSimulator:
    """Simulates one trace under one configuration and policy."""

    def __init__(
        self,
        trace,
        config=None,
        policy: Optional[SpeculationPolicy] = None,
        telemetry=None,
        share_index=True,
        sanitizer=None,
        squash_ledger=None,
    ):
        self.trace = trace
        self.config = config or MultiscalarConfig()
        self.policy = policy or AlwaysPolicy()
        # share_index=True adopts the trace's memoized TraceIndex, so a
        # grid of simulators over one trace builds the static structures
        # once; False forces a private rebuild (benchmarks, paranoia)
        self._share_index = share_index
        self.cache = BankedCache(self.config.make_cache_config())
        self.stats = SpeculationStats()
        # instrumentation is opt-in: the null default makes every sink
        # call a no-op and lets hot paths skip telemetry entirely, so
        # results and runtimes are unchanged when it is off (the A/B
        # test in tests/telemetry/test_ab.py holds the simulator to it)
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._tel_on = self.telemetry.enabled
        self._prepare_static()
        # optional dynamic taint sanitizer (repro.multiscalar.sanitizer):
        # observes violations for transient secret reads; counts events
        # unconditionally, publishes telemetry only when enabled
        self._sanitizer = sanitizer.bind(self) if sanitizer is not None else None
        # optional squash ledger (repro.multiscalar.explain): records one
        # structured cause per violation; observation only, results are
        # bit-identical with or without it
        self._squash_ledger = (
            squash_ledger.bind(self) if squash_ledger is not None else None
        )

    # ------------------------------------------------------------------
    # static preprocessing
    # ------------------------------------------------------------------

    def _prepare_static(self):
        """Adopt (or build) the trace's static index.

        Everything here is a function of the trace alone; the
        :class:`~repro.frontend.static_index.TraceIndex` memoized on the
        trace lets a whole experiment grid share one copy.  The aliases
        keep the simulator's historical attribute names (policies and
        tests read them), and the ``_c_*`` names are the columnar views
        the hot loops index by ``seq``.
        """
        trace = self.trace
        index_fn = getattr(trace, "index", None)
        if self._share_index and index_fn is not None:
            index = index_fn()
        else:
            index = TraceIndex(trace)
        self._index = index
        self.n = index.n
        self.tasks = index.tasks
        self.n_tasks = index.n_tasks
        self.task_of = index.task_of
        self.index_in_task = index.index_in_task
        self.task_pcs = index.task_pcs
        self.src_operands = index.src_operands
        self.src_producers = index.src_producers
        self.reg_dependents = index.reg_dependents
        self.task_writesets = index.task_writesets
        self.producers = index.producers
        self.dependents = index.dependents
        self.prior_task_stores = index.prior_task_stores
        self.all_store_seqs = index.all_store_seqs
        self.addr_producer = index.addr_producer
        self._c_pc = index.pc
        self._c_addr = index.addr
        self._c_is_load = index.is_load
        self._c_is_store = index.is_store
        self._c_is_memory = index.is_memory
        self._c_fu = index.fu_code
        self._c_rd = index.rd

    # ------------------------------------------------------------------
    # helpers used by policies
    # ------------------------------------------------------------------

    def all_prior_stores_issued(self, seq) -> bool:
        """No store earlier in program order still has an unknown address.

        A store's address is considered known once its base register is
        available and the store has entered its stage's window (address
        generation happens ahead of the data arriving).
        """
        m = self._unknown_addr_stores.minimum()
        return m is None or m >= seq

    def all_prior_stores_executed(self, seq) -> bool:
        """Every store earlier in program order has completed its access."""
        m = self._unexecuted_stores.minimum()
        return m is None or m >= seq

    def producer_pending(self, seq) -> bool:
        """The load's producing store exists and has not issued yet.

        Once a store has issued, its address and data sit in the store
        queue/ARB and a later load can be satisfied by forwarding, so
        "pending" ends at issue, not at completion.
        """
        producer = self.producers.get(seq)
        return producer is not None and not self.issued[producer]

    @property
    def head_task(self) -> int:
        """Index of the oldest uncommitted task."""
        return self._head

    def task_pc_at(self, task_id) -> Optional[int]:
        """Task PC of the task at a given position (ESYNC's path probe)."""
        if 0 <= task_id < self.n_tasks:
            return self.task_pcs[task_id]
        return None

    def squashed_seqs(self, first_seq):
        """All dispatched instruction seqs at or after *first_seq*."""
        first_task = self.task_of[first_seq]
        for t in range(first_task, self._next_dispatch):
            for seq in self.tasks[t]:
                if seq >= first_seq:
                    yield seq

    def classify_load(self, seq, bucket):
        """Buffer a Table-8 classification until the load's task commits."""
        self._pending_class[seq] = bucket

    # ------------------------------------------------------------------
    # simulation
    # ------------------------------------------------------------------

    def run(self) -> SpeculationStats:
        """Run the simulation on the configured kernel.

        ``config.kernel == "batched"`` selects the columnar kernel
        (:mod:`repro.multiscalar.batched`) whenever it supports the run
        (oracle register model, telemetry off); anything it cannot
        reproduce bit-identically falls back to this object kernel
        under ``config.scheduler``.  Results are bit-identical across
        kernels — the differential harness in
        ``tests/multiscalar/test_kernel_differential.py`` enforces it.
        """
        if self.config.kernel == "batched":
            from repro.multiscalar import batched

            if batched.supports(self):
                return batched.run_batched(self)
        return self._run_object()

    def _run_object(self) -> SpeculationStats:
        cfg = self.config
        n = self.n

        self.done: List[Optional[int]] = [None] * n
        self.issued = [False] * n
        self.issue_time: List[Optional[int]] = [None] * n
        self._completed = [False] * n  # completion event processed
        self._epoch = [0] * n
        self._reg_spec_mode = cfg.register_speculation
        self._reg_learned = set()  # (producer PC, consumer PC) known dependent
        self._events: List[tuple] = []  # (time, seq, epoch)
        self._pending_class: Dict[int, str] = {}
        self._issue_floor = [0] * self.n_tasks  # re-issue gate after squash

        self._unissued_stores = _LazyMinSet(self.all_store_seqs)
        self._unexecuted_stores = _LazyMinSet(self.all_store_seqs)
        self._unknown_addr_stores = _LazyMinSet(self.all_store_seqs)
        self._store_perform = [0] * n  # time a store's data enters the ARB

        self._dispatch_time: List[Optional[int]] = [None] * self.n_tasks
        self._fetch_time: Dict[int, int] = {}
        self._icaches = (
            [InstructionCache() for _ in range(cfg.stages)]
            if cfg.model_icache
            else None
        )
        self._remaining = [len(seqs) for seqs in self.tasks]
        self._task_unissued: Dict[int, List[int]] = {}
        # unissued entries per task.  The _task_unissued lists are
        # compacted lazily, so their length overstates the real
        # population; this counter is the authoritative one.
        self._task_live = [0] * self.n_tasks
        self._head = 0
        self._next_dispatch = 0
        self._last_dispatch_time = -cfg.dispatch_latency
        self._pending_correct = [True] * (self.n_tasks + 1)

        self.sequencer = PathBasedTaskPredictor(history=cfg.predictor_history)
        self._load_first_attempt: Dict[int, int] = {}
        if self._tel_on:
            trace_sink = self.telemetry.trace
            for stage in range(cfg.stages):
                trace_sink.thread_name(stage, "stage %d" % stage)

        # event-driven issue scheduling: a stage is rescanned only when
        # dirty (something observable happened) or its timed wake is due.
        # Skipping is enabled only for the oracle register model — the
        # speculative register models issue on stale values whose
        # availability the wake plans do not track.
        self._skip_enabled = (
            cfg.scheduler == "event" and cfg.register_speculation == "oracle"
        )
        self._task_dirty = [True] * self.n_tasks
        self._task_next_try: List[float] = [0] * self.n_tasks
        # wake registries.  Every registration carries (task id, entry
        # seq): firing unparks that entry and dirties its stage.
        self._wake_on_issue: Dict[int, List[tuple]] = {}  # producer seq -> regs
        self._resolve_watchers: Dict[int, List[tuple]] = {}  # store seq -> regs
        self._addr_watchers: List[tuple] = []  # (threshold, task, seq) heap
        self._exec_watchers: List[tuple] = []  # (threshold, task, seq) heap
        self._commit_watchers: List[tuple] = []  # (task threshold, task, seq) heap
        # per-entry parking: an entry whose denial produced a full wake
        # plan is skipped by subsequent scans (even while its stage is
        # otherwise active) until one of its conditions fires or its
        # timed wake arrives.  Squash unparks everything it resets.
        self._entry_parked = bytearray(n)
        self._entry_wake: List[float] = [0.0] * n
        # scan-prefix memo, one per task: the leading run of its
        # unissued list known to be skippable (dead slots and entries
        # parked strictly beyond *wake*).  ``pos`` list slots are
        # skipped wholesale, entering the scan with ``considered``
        # already counted; any unpark of an entry at or below ``last``
        # (and any squash, compaction, or due timed wake) invalidates
        # the memo back to a full scan.
        nt_count = self.n_tasks
        self._scan_pos = [0] * nt_count
        self._scan_considered = [0] * nt_count
        self._scan_wake: List[float] = [_INF] * nt_count
        self._scan_last = [-1] * nt_count

        # per-class limits and latencies as lists indexed by fu_code
        self._fu_limits = [cfg.fu_counts[cls] for cls in FU_ORDER]
        latencies = [cfg.fu_latencies[cls] for cls in FU_ORDER]

        self.policy.bind(self)

        now = 0
        idle_cycles = 0
        while self._head < self.n_tasks:
            progressed = False
            progressed |= self._process_events(now)
            progressed |= self._try_dispatch(now)
            progressed |= self._issue_phase(now, latencies)
            progressed |= self._try_commit(now)
            if self._head >= self.n_tasks:
                break
            if progressed:
                idle_cycles = 0
                now += 1
                continue
            next_time = self._next_event_time(now)
            if next_time is not None and next_time > now:
                now = next_time
                idle_cycles = 0
            else:
                now += 1
                idle_cycles += 1
                if idle_cycles > 100_000:
                    raise SimulationError(
                        "no progress for %d cycles at t=%d (head task %d of %d)"
                        % (idle_cycles, now, self._head, self.n_tasks)
                    )

        self.stats.cycles = now
        self.stats.control_mispredictions = self.sequencer.mispredictions
        if self._tel_on:
            self._publish_run_metrics()
            self.policy.publish_telemetry(self.telemetry)
        return self.stats

    def _publish_run_metrics(self):
        """End-of-run gauges (simulated-time totals and machine shape)."""
        metrics = self.telemetry.metrics
        stats = self.stats
        metrics.gauge("sim.cycles").set(stats.cycles)
        metrics.gauge("sim.ipc").set(round(stats.ipc, 4))
        metrics.gauge("sim.tasks_committed").set(stats.tasks_committed)
        metrics.gauge("sim.committed_instructions").set(stats.committed_instructions)
        metrics.gauge("sim.squashed_instructions").set(stats.squashed_instructions)
        metrics.gauge("sim.control_mispredictions").set(stats.control_mispredictions)
        metrics.gauge("config.stages").set(self.config.stages)
        metrics.gauge("policy.name").set(self.policy.name)

    # -- dispatch ----------------------------------------------------------

    def _dispatch_ready_time(self, task_id, now) -> Optional[int]:
        base = self._last_dispatch_time + self.config.dispatch_latency
        if self._pending_correct[task_id]:
            return base
        last_prev = self.tasks[task_id - 1][-1]
        resolve = self.done[last_prev]
        if resolve is None or not self.issued[last_prev]:
            return None  # misprediction not resolved yet
        return max(base, resolve + self.config.mispredict_penalty)

    def _try_dispatch(self, now) -> bool:
        progressed = False
        while (
            self._next_dispatch < self.n_tasks
            and self._next_dispatch - self._head < self.config.stages
        ):
            task_id = self._next_dispatch
            ready = self._dispatch_ready_time(task_id, now)
            if ready is None or ready > now:
                break
            self._dispatch_time[task_id] = now
            self._last_dispatch_time = now
            self._task_dirty[task_id] = True
            self._task_next_try[task_id] = now
            self._task_unissued[task_id] = list(self.tasks[task_id])
            self._task_live[task_id] = len(self.tasks[task_id])
            if self._icaches is not None:
                self._schedule_fetch(task_id, now)
            self._next_dispatch += 1
            self.policy.on_task_dispatched(task_id, now)
            if task_id + 1 < self.n_tasks:
                correct = self.sequencer.record(self.task_pcs[task_id + 1])
                self._pending_correct[task_id + 1] = correct
            progressed = True
        return progressed

    # -- issue -------------------------------------------------------------

    def _reg_avail(self, producer, task_id) -> Optional[int]:
        """When *producer*'s value is usable in *task_id*, or None."""
        done = self.done[producer]
        if done is None:
            return None
        producer_task = self.task_of[producer]
        if producer_task != task_id:
            done += self.config.ring_hop_latency * (task_id - producer_task)
        return done

    def _may_speculate_register(self, producer, consumer_seq, task_id) -> bool:
        """Is the consumer allowed to use a stale value for this operand?"""
        mode = self._reg_spec_mode
        if mode in ("oracle", "conservative"):
            return False
        if self.task_of[producer] == task_id:
            return False  # intra-task dependences use the scoreboard
        if mode == "always":
            return True
        pair = (self._c_pc[producer], self._c_pc[consumer_seq])
        return pair not in self._reg_learned

    def _maybe_writer_stall(self, reg, producer, task_id, now) -> bool:
        """Conservative forwarding: stall while any earlier in-flight task
        whose static write-set contains *reg* — and which is not the true
        producer's task — has not resolved its path yet."""
        first = self._head
        if producer is not None:
            first = max(first, self.task_of[producer] + 1)
        for other in range(first, task_id):
            if reg not in self.task_writesets.get(self.task_pcs[other], ()):
                continue
            last_seq = self.tasks[other][-1]
            done = self.done[last_seq]
            if done is None or done > now:
                return True
        return False

    def _source_ready_time(self, seq, task_id, now) -> int:
        ready = 0
        conservative = self._reg_spec_mode == "conservative"
        for reg, producer, prev in self.src_operands[seq]:
            if conservative and self._maybe_writer_stall(reg, producer, task_id, now):
                return -1
            if producer is None:
                continue  # value comes with the committed state
            avail = self._reg_avail(producer, task_id)
            if avail is None or avail > now:
                if not self._may_speculate_register(producer, seq, task_id):
                    return -1 if avail is None else (avail if avail > ready else ready)
                # consume the stale (penultimate) value instead
                if prev is None:
                    continue  # stale value comes with committed state
                stale = self._reg_avail(prev, task_id)
                if stale is None:
                    return -1  # not even the stale value exists yet
                avail = stale
            if avail > ready:
                ready = avail
        return ready

    def _schedule_fetch(self, task_id, dispatch_time):
        """Walk the task's instruction stream through the stage's i-cache
        and record each instruction's absolute fetch time."""
        cfg = self.config
        icache = self._icaches[task_id % cfg.stages]
        cursor = dispatch_time
        seqs = self.tasks[task_id]
        c_pc = self._c_pc
        block = cfg.fetch_width
        last_line = None
        for group_start in range(0, len(seqs), block):
            pc_addr = c_pc[seqs[group_start]] * 4
            line = pc_addr // icache.config.block_bytes
            if line != last_line:
                latency = icache.access(pc_addr)
                cursor += latency - 1
                last_line = line
            for seq in seqs[group_start : group_start + block]:
                self._fetch_time[seq] = cursor
            cursor += 1

    def _fetch_ready(self, seq, task_id) -> int:
        if self._icaches is not None:
            return self._fetch_time.get(seq, self._dispatch_time[task_id])
        return (
            self._dispatch_time[task_id]
            + self.index_in_task[seq] // self.config.fetch_width
        )

    def _resolve_store_address(self, seq, task_id, now, plan=None) -> bool:
        """Mark a store's address as known once its base register is ready.

        Returns True when the address resolved this cycle.  When *plan*
        is given (event scheduling), each early-out appends the wake
        condition under which resolution should be retried.  The caller
        (:meth:`_issue_phase`) has already established that the store is
        fetched and past its stage's issue floor.
        """
        cfg = self.config
        producer = self.addr_producer.get(seq)
        if producer is not None:
            done = self.done[producer]
            if done is None:
                if plan is not None:
                    plan.append((WAKE_ISSUE, producer))
                return False
            avail = done
            producer_task = self.task_of[producer]
            if producer_task != task_id:
                avail += cfg.ring_hop_latency * (task_id - producer_task)
            if avail + cfg.agen_latency > now:
                if plan is not None:
                    plan.append((WAKE_TIME, avail + cfg.agen_latency))
                return False
        self._unknown_addr_stores.discard(seq)
        if self._skip_enabled:
            self._fire_addr_watchers()
            self._fire_resolve_watchers(seq)
        return True

    def _intra_task_gate(self, seq, addr, now, plan=None) -> bool:
        """Intra-task dependences are never speculated (Section 5)."""
        unknown = self._unknown_addr_stores
        c_addr = self._c_addr
        done_arr = self.done
        for store_seq in self.prior_task_stores.get(seq, ()):
            if store_seq in unknown:
                if plan is not None:
                    plan.append((WAKE_RESOLVE, store_seq))
                return False
            if c_addr[store_seq] == addr:
                done = done_arr[store_seq]
                if done is None:
                    if plan is not None:
                        plan.append((WAKE_ISSUE, store_seq))
                    return False
                if done > now:
                    if plan is not None:
                        plan.append((WAKE_TIME, done))
                    return False
        return True

    def _try_issue(self, seq, task_id, now, counters, latencies, plan=None) -> bool:
        # fetch and issue-floor gating already happened in _issue_phase
        cfg = self.config
        if plan is not None:
            # oracle-model fast path (skip mode implies the oracle
            # register model): consumers wait exactly for their
            # producers' ring-forwarded values
            ready = 0
            done_arr = self.done
            task_of = self.task_of
            hop = cfg.ring_hop_latency
            for producer in self.src_producers[seq]:
                done = done_arr[producer]
                if done is None:
                    plan.append((WAKE_ISSUE, producer))
                    return False
                producer_task = task_of[producer]
                if producer_task != task_id:
                    done += hop * (task_id - producer_task)
                if done > ready:
                    ready = done
            if ready > now:
                plan.append((WAKE_TIME, ready))
                return False
        else:
            src_ready = self._source_ready_time(seq, task_id, now)
            if src_ready < 0 or src_ready > now:
                return False
        fu = self._c_fu[seq]
        if counters[fu] >= self._fu_limits[fu]:
            # the scan already issued a full complement into this class;
            # retry as soon as the units free (next cycle) — without
            # this hint the entry could be parked on unrelated earlier
            # hints (e.g. a store's address-resolution wake) and miss it
            if plan is not None:
                plan.append((WAKE_TIME, now + 1))
            return False
        is_load = self._c_is_load[seq]
        if is_load:
            if not self._intra_task_gate(seq, self._c_addr[seq], now, plan):
                return False
            if self._tel_on:
                self._load_first_attempt.setdefault(seq, now)
            if not self.policy.may_issue_load(seq, now):
                if self._tel_on:
                    self.telemetry.metrics.counter("policy.load_denials").inc()
                if plan is not None:
                    hints = self.policy.deny_hints(seq, now)
                    if hints:
                        plan.extend(hints)
                    else:
                        # the policy does not model its wake conditions:
                        # re-ask every cycle (legacy behavior)
                        plan.append((WAKE_TIME, now + 1))
                return False
            if self._tel_on:
                self.telemetry.metrics.counter("policy.load_grants").inc()
        if self._c_is_memory[seq]:
            completion = self.cache.access(self._c_addr[seq], now + cfg.agen_latency)
        else:
            completion = now + latencies[fu]
        counters[fu] += 1
        self.issued[seq] = True
        self.issue_time[seq] = now
        self.done[seq] = completion
        if self._skip_enabled:
            self._fire_issue_wakes(seq)
        if self._c_is_store[seq]:
            self._unissued_stores.discard(seq)
            self._unknown_addr_stores.discard(seq)
            if self._skip_enabled:
                self._fire_addr_watchers()
                self._fire_resolve_watchers(seq)
            self._store_perform[seq] = now + 1
            self.policy.on_store_issued(seq, now)
        if self._tel_on and is_load:
            first = self._load_first_attempt.pop(seq, now)
            wait = now - first
            pc = self._c_pc[seq]
            self.telemetry.metrics.histogram("load.wait_cycles").observe(wait)
            if wait > 0:
                self.telemetry.trace.complete(
                    "load stall pc=%d" % pc,
                    ts=first,
                    dur=wait,
                    tid=task_id % self.config.stages,
                    cat="stall",
                    args={"seq": seq, "pc": pc, "task": task_id},
                )
        heapq.heappush(self._events, (completion, seq, self._epoch[seq]))
        return True

    def _issue_phase(self, now, latencies) -> bool:
        progressed = False
        cfg = self.config
        rs_window = cfg.rs_window
        issue_width = cfg.issue_width
        skip = self._skip_enabled
        dirty = self._task_dirty
        next_try = self._task_next_try
        unknown_addr = self._unknown_addr_stores
        issued_flags = self.issued
        live = self._task_live
        fetch_width = cfg.fetch_width
        index_in_task = self.index_in_task
        c_is_store = self._c_is_store
        parked = self._entry_parked
        entry_wake = self._entry_wake
        scan_pos = self._scan_pos
        scan_considered = self._scan_considered
        scan_wake = self._scan_wake
        scan_last = self._scan_last
        shared_hints: List[tuple] = []
        for task_id in range(self._head, self._next_dispatch):
            if skip:
                if not dirty[task_id] and next_try[task_id] > now:
                    continue
                dirty[task_id] = False
            if self._dispatch_time[task_id] > now:
                continue
            if not live[task_id]:
                if skip:
                    # nothing in flight for this stage; only a squash
                    # (which dirties every stage) can repopulate it
                    next_try[task_id] = _INF
                continue
            floor = self._issue_floor[task_id]
            if floor > now:
                # provably a no-op scan: nothing may issue or resolve
                # before the post-squash restart floor
                if skip:
                    next_try[task_id] = floor
                continue
            unissued = self._task_unissued[task_id]
            counters = [0] * NUM_FU_CLASSES
            issued_count = 0
            resolved = False
            unparked = 0  # denials without a full wake plan
            nt_plan = _INF  # earliest timed rescan of this stage
            # fetch gating, hoisted out of the per-entry helpers: fetch
            # times are nondecreasing in program order within a task
            # (sequential fetch), so the first unfetched entry ends the
            # scan — nothing behind it can issue or resolve this cycle
            fetch_times = self._fetch_time if self._icaches is not None else None
            dispatch = self._dispatch_time[task_id]
            # without an i-cache the fetch time is a pure function of
            # position: entries at index >= fetch_limit are not fetched
            # yet, so one comparison replaces the per-entry division
            fetch_limit = (now - dispatch + 1) * fetch_width
            # resume past the memoized skippable prefix (invalid once
            # its earliest timed wake is due)
            pfx_pos = scan_pos[task_id]
            pfx_wake = scan_wake[task_id]
            if pfx_pos and now >= pfx_wake:
                pfx_pos = 0
                pfx_wake = _INF
            if pfx_pos:
                considered = scan_considered[task_id]
                new_last = scan_last[task_id]
                if pfx_wake < nt_plan:
                    nt_plan = pfx_wake
                entries = unissued[pfx_pos:]
            else:
                considered = 0
                new_last = -1
                entries = unissued
            new_pos = pfx_pos
            new_considered = considered
            new_wake = pfx_wake
            growing = True  # still extending the skippable prefix
            for seq in entries:
                if issued_flags[seq]:
                    if growing:
                        new_pos += 1
                    continue  # dead entry awaiting compaction
                considered += 1
                if skip and parked[seq]:
                    wake = entry_wake[seq]
                    if wake > now:
                        # none of its wake conditions have fired yet,
                        # but the per-cycle scan would still *count*
                        # this entry — and end the whole scan here once
                        # the window or width is exhausted, keeping
                        # later stores from resolving this cycle
                        if considered > rs_window or issued_count >= issue_width:
                            break
                        if wake < nt_plan:
                            nt_plan = wake
                        if growing:
                            new_pos += 1
                            new_considered = considered
                            if wake < new_wake:
                                new_wake = wake
                            new_last = seq
                        continue
                    parked[seq] = 0  # its timed wake is due: rescan
                growing = False
                if fetch_times is None:
                    if index_in_task[seq] >= fetch_limit:
                        fetch = dispatch + index_in_task[seq] // fetch_width
                        if fetch < nt_plan:
                            nt_plan = fetch
                        break
                else:
                    fetch = fetch_times.get(seq, dispatch)
                    if fetch > now:
                        if fetch < nt_plan:
                            nt_plan = fetch
                        break
                if skip:
                    del shared_hints[:]  # consumed synchronously by _park
                    hints: Optional[List[tuple]] = shared_hints
                else:
                    hints = None
                if (
                    considered <= rs_window
                    and c_is_store[seq]
                    and seq in unknown_addr
                ):
                    if self._resolve_store_address(seq, task_id, now, hints):
                        resolved = True
                if considered > rs_window or issued_count >= issue_width:
                    break
                if self._try_issue(seq, task_id, now, counters, latencies, hints):
                    issued_count += 1
                    progressed = True
                elif skip:
                    if hints:
                        wake = self._park(seq, task_id, hints, now)
                        if wake is None:
                            unparked += 1
                        elif wake < nt_plan:
                            nt_plan = wake
                    else:
                        # the deny produced no wake condition; fall
                        # back to per-cycle rescans for this entry
                        unparked += 1
            scan_pos[task_id] = new_pos
            scan_considered[task_id] = new_considered
            scan_wake[task_id] = new_wake
            scan_last[task_id] = new_last
            if issued_count:
                remaining = live[task_id] - issued_count
                live[task_id] = remaining
                if len(unissued) - remaining >= 64 and remaining * 2 < len(unissued):
                    # mostly dead: compact so later scans stay short
                    self._task_unissued[task_id] = [
                        s for s in unissued if not issued_flags[s]
                    ]
                    # list positions shifted: the prefix memo is stale
                    scan_pos[task_id] = 0
                    scan_considered[task_id] = 0
                    scan_wake[task_id] = _INF
                    scan_last[task_id] = -1
            if skip:
                if issued_count or resolved or unparked:
                    # state changed, or an unparked entry needs the
                    # legacy per-cycle rescan
                    next_try[task_id] = now + 1
                elif nt_plan < _INF:
                    next_try[task_id] = nt_plan if nt_plan > now else now + 1
                else:
                    # empty, or every pending entry is parked on a wake
                    # condition that will dirty this stage when it fires
                    next_try[task_id] = _INF
        return progressed

    # -- event-driven scheduling ----------------------------------------------

    def _park(self, seq, task_id, hints, now) -> Optional[float]:
        """Register a denied entry's wake conditions and park it.

        The hint list is a disjunction: the entry is unparked (and its
        stage dirtied) when *any* condition fires.  Returns the entry's
        earliest timed wake (``_INF`` when purely event-driven), or
        None when the entry could not be parked — a condition was
        already satisfied at registration time (the watched instruction
        issued or a threshold was crossed later in this very cycle), or
        every hint was a timed wake that is already due.  The caller
        then falls back to rescanning the entry next cycle, closing the
        fire-before-register race.
        """
        nt = _INF
        for kind, arg in hints:
            if kind == WAKE_TIME:
                if arg < nt:
                    nt = arg
            elif kind == WAKE_ISSUE:
                if self.issued[arg]:
                    return None
                self._wake_on_issue.setdefault(arg, []).append((task_id, seq))
            elif kind == WAKE_RESOLVE:
                if arg not in self._unknown_addr_stores:
                    return None
                self._resolve_watchers.setdefault(arg, []).append((task_id, seq))
            elif kind == WAKE_ADDR_MIN:
                m = self._unknown_addr_stores.minimum()
                if m is None or m >= arg:
                    return None
                heapq.heappush(self._addr_watchers, (arg, task_id, seq))
            elif kind == WAKE_EXEC_MIN:
                m = self._unexecuted_stores.minimum()
                if m is None or m >= arg:
                    return None
                heapq.heappush(self._exec_watchers, (arg, task_id, seq))
            elif kind == WAKE_COMMIT:
                if self._head > arg:
                    return None
                heapq.heappush(self._commit_watchers, (arg, task_id, seq))
        if nt <= now:
            return None
        self._entry_wake[seq] = nt
        self._entry_parked[seq] = 1
        return nt

    def _unpark(self, task_id, s):
        """Unpark entry *s*, dirty its stage, and drop the stage's scan
        prefix if the entry sits inside it."""
        self._entry_parked[s] = 0
        self._task_dirty[task_id] = True
        if s <= self._scan_last[task_id]:
            self._scan_pos[task_id] = 0
            self._scan_considered[task_id] = 0
            self._scan_wake[task_id] = _INF
            self._scan_last[task_id] = -1

    def _fire_issue_wakes(self, seq):
        watchers = self._wake_on_issue.pop(seq, None)
        if watchers:
            for task_id, s in watchers:
                self._unpark(task_id, s)

    def _fire_resolve_watchers(self, store_seq):
        watchers = self._resolve_watchers.pop(store_seq, None)
        if watchers:
            for task_id, s in watchers:
                self._unpark(task_id, s)

    def _fire_addr_watchers(self):
        heap = self._addr_watchers
        if not heap:
            return
        m = self._unknown_addr_stores.minimum()
        while heap and (m is None or heap[0][0] <= m):
            _, task_id, s = heapq.heappop(heap)
            self._unpark(task_id, s)

    def _fire_exec_watchers(self):
        heap = self._exec_watchers
        if not heap:
            return
        m = self._unexecuted_stores.minimum()
        while heap and (m is None or heap[0][0] <= m):
            _, task_id, s = heapq.heappop(heap)
            self._unpark(task_id, s)

    def _fire_commit_watchers(self):
        heap = self._commit_watchers
        if not heap:
            return
        head = self._head
        while heap and heap[0][0] < head:
            _, task_id, s = heapq.heappop(heap)
            self._unpark(task_id, s)

    def note_load_wake(self, seq):
        """Policy callback: a store signal will release load *seq* next
        cycle — unpark it and rescan its stage (an event-scheduler wake
        the generic hints cannot express)."""
        if self._skip_enabled:
            self._unpark(self.task_of[seq], seq)

    # -- completion events ---------------------------------------------------

    def _process_events(self, now) -> bool:
        progressed = False
        events = self._events
        epochs = self._epoch
        issued = self.issued
        completed = self._completed
        remaining = self._remaining
        task_of = self.task_of
        c_is_store = self._c_is_store
        reg_violations = self._reg_spec_mode in ("always", "predict")
        store_completed = False
        while events and events[0][0] <= now:
            time, seq, epoch = heapq.heappop(events)
            if epoch != epochs[seq] or not issued[seq]:
                continue  # stale (squashed) event
            progressed = True
            completed[seq] = True
            remaining[task_of[seq]] -= 1
            if c_is_store[seq]:
                self._unexecuted_stores.discard(seq)
                store_completed = True
                violator = self._find_violation(seq, time)
                if violator is not None:
                    self._handle_violation(seq, violator, time)
            if reg_violations and self._c_rd[seq] > 0:
                violator = self._find_register_violation(seq, time)
                if violator is not None:
                    self._handle_register_violation(seq, violator, time)
        if store_completed and self._skip_enabled:
            self._fire_exec_watchers()
        return progressed

    def _find_register_violation(self, producer, time) -> Optional[int]:
        """Earliest consumer that issued before this producer's value
        could have reached it (it used a stale register value)."""
        producer_task = self.task_of[producer]
        for consumer in self.reg_dependents.get(producer, ()):
            consumer_task = self.task_of[consumer]
            if consumer_task <= producer_task:
                continue
            if consumer_task >= self._next_dispatch:
                break
            if consumer_task < self._head:
                continue
            issued_at = self.issue_time[consumer]
            if not self.issued[consumer] or issued_at is None:
                continue
            real_avail = time + self.config.ring_hop_latency * (
                consumer_task - producer_task
            )
            if issued_at < real_avail:
                return consumer
        return None

    def squash_for_value_mismatch(self, load_seq, now):
        """A value-speculated load was verified wrong: squash it and
        everything younger (used by the VSYNC extension policy)."""
        self.stats.value_mis_speculations += 1
        restart = now + self.config.squash_penalty
        self._squash_from_seq(load_seq, restart)

    def _handle_register_violation(self, producer, consumer, time):
        self.stats.register_mis_speculations += 1
        if self._tel_on:
            self.telemetry.metrics.counter("sim.register_mis_speculations").inc()
            self.telemetry.trace.instant(
                "register violation",
                ts=time,
                tid=self.task_of[consumer] % self.config.stages,
                cat="violation",
                args={
                    "producer_pc": self._c_pc[producer],
                    "consumer_pc": self._c_pc[consumer],
                },
            )
        pair = (self._c_pc[producer], self._c_pc[consumer])
        self._reg_learned.add(pair)
        restart = time + self.config.squash_penalty
        self._squash_from_seq(consumer, restart)

    def _find_violation(self, store_seq, time) -> Optional[int]:
        """Earliest load violated by this store's execution, if any."""
        store_task = self.task_of[store_seq]
        for load_seq in self.dependents.get(store_seq, ()):
            load_task = self.task_of[load_seq]
            if load_task <= store_task:
                continue
            if load_task >= self._next_dispatch:
                break  # not dispatched yet; later dependents are younger
            if load_task < self._head:
                continue  # already committed (cannot happen; guard anyway)
            done = self.done[load_seq]
            if done is not None and done < self._store_perform[store_seq]:
                # the load performed before the store's data entered the
                # ARB: it read stale data.  Loads completing at or after
                # the store's perform time are satisfied by forwarding.
                if self.policy.absolves_violation(store_seq, load_seq):
                    continue  # e.g. a correctly value-predicted load
                return load_seq
        return None

    def _handle_violation(self, store_seq, load_seq, time):
        self.stats.mis_speculations += 1
        self.stats.breakdown.ny += 1
        if self._tel_on:
            c_pc = self._c_pc
            self.telemetry.metrics.counter("sim.mis_speculations").inc()
            self.telemetry.trace.instant(
                "violation store@%d->load@%d"
                % (c_pc[store_seq], c_pc[load_seq]),
                ts=time,
                tid=self.task_of[load_seq] % self.config.stages,
                cat="violation",
                args={
                    "store_pc": c_pc[store_seq],
                    "load_pc": c_pc[load_seq],
                    "distance": self.task_of[load_seq] - self.task_of[store_seq],
                },
            )
        self.policy.on_violation(store_seq, load_seq, time)
        if self._sanitizer is not None:
            # before the squash: the issued flags still describe the
            # speculative window the sanitizer inspects
            self._sanitizer.on_violation(store_seq, load_seq, time)
        if self._squash_ledger is not None:
            # after the policy recorded the mis-speculation (so MDPT
            # state is the squash-time state) and before the squash
            self._squash_ledger.on_violation(store_seq, load_seq, time)
        restart = time + self.config.squash_penalty
        self._squash_from_seq(load_seq, restart)
        # the store itself survives; let it signal for the re-execution
        self.policy.on_store_executed(store_seq, time)

    def _squash_from_seq(self, first_seq, restart):
        """Squash the violating load and every younger instruction.

        Per the paper (Section 4.3), the instructions *following the
        load* are squashed and re-issued: older instructions of the
        load's own task keep their results, so the task's tail — often
        including the producers of younger tasks' recurrences —
        re-executes immediately.  Younger tasks restart staggered by the
        sequencer's re-walk rate.
        """
        cfg = self.config
        first_task = self.task_of[first_seq]
        squashed_before = self.stats.squashed_instructions
        c_is_store = self._c_is_store
        parked = self._entry_parked
        for task_id in range(first_task, self._next_dispatch):
            reset_any = False
            for seq in self.tasks[task_id]:
                if seq < first_seq:
                    continue
                reset_any = True
                parked[seq] = 0  # stale wake registrations must not gate re-issue
                if self.issued[seq]:
                    self.stats.squashed_instructions += 1
                if self._completed[seq]:
                    self._remaining[task_id] += 1
                    self._completed[seq] = False
                self._epoch[seq] += 1
                self.issued[seq] = False
                self.issue_time[seq] = None
                self.done[seq] = None
                self._pending_class.pop(seq, None)
                if self._tel_on:
                    self._load_first_attempt.pop(seq, None)
                if c_is_store[seq]:
                    self._unissued_stores.add(seq)
                    self._unexecuted_stores.add(seq)
                    self._unknown_addr_stores.add(seq)
            if not reset_any:
                continue
            rebuilt = [s for s in self.tasks[task_id] if not self.issued[s]]
            self._task_unissued[task_id] = rebuilt
            self._task_live[task_id] = len(rebuilt)
            self._scan_pos[task_id] = 0
            self._scan_considered[task_id] = 0
            self._scan_wake[task_id] = _INF
            self._scan_last[task_id] = -1
            offset = task_id - first_task
            self._issue_floor[task_id] = restart + offset * cfg.squash_stagger
        if self._skip_enabled:
            # everything at or after the squash point changed shape;
            # re-scan every in-flight stage from scratch
            dirty = self._task_dirty
            for task_id in range(self._head, self._next_dispatch):
                dirty[task_id] = True
        if self._tel_on:
            depth = self.stats.squashed_instructions - squashed_before
            self.telemetry.metrics.counter("sim.squashes").inc()
            self.telemetry.metrics.histogram("squash.depth").observe(depth)
            self.telemetry.trace.instant(
                "squash from seq %d" % first_seq,
                ts=restart,
                tid=first_task % cfg.stages,
                cat="squash",
                args={"first_seq": first_seq, "squashed_instructions": depth},
            )
        self.policy.on_squash(first_seq, restart)

    # -- commit ---------------------------------------------------------------

    def _try_commit(self, now) -> bool:
        progressed = False
        c_is_load = self._c_is_load
        c_is_store = self._c_is_store
        while self._head < self.n_tasks and self._remaining[self._head] == 0:
            task_id = self._head
            stats = self.stats
            breakdown = stats.breakdown
            for seq in self.tasks[task_id]:
                stats.committed_instructions += 1
                if c_is_load[seq]:
                    stats.committed_loads += 1
                    bucket = self._pending_class.pop(seq, "nn")
                    setattr(breakdown, bucket, getattr(breakdown, bucket) + 1)
                elif c_is_store[seq]:
                    stats.committed_stores += 1
            stats.tasks_committed += 1
            if self._tel_on:
                dispatch = self._dispatch_time[task_id]
                self.telemetry.trace.complete(
                    "task %d" % task_id,
                    ts=dispatch,
                    dur=max(1, now - dispatch),
                    tid=task_id % self.config.stages,
                    cat="task",
                    args={
                        "task_pc": self.task_pcs[task_id],
                        "instructions": len(self.tasks[task_id]),
                    },
                )
            self.policy.on_task_committed(task_id, now)
            self._head += 1
            progressed = True
            if self._skip_enabled:
                self._fire_commit_watchers()
        return progressed

    # -- time management --------------------------------------------------------

    def _next_event_time(self, now) -> Optional[int]:
        candidates = []
        events = self._events
        while events:
            time, seq, epoch = events[0]
            if epoch != self._epoch[seq] or not self.issued[seq]:
                heapq.heappop(events)
                continue
            candidates.append(time)
            break
        if (
            self._next_dispatch < self.n_tasks
            and self._next_dispatch - self._head < self.config.stages
        ):
            ready = self._dispatch_ready_time(self._next_dispatch, now)
            if ready is not None:
                candidates.append(ready)
        for task_id in range(self._head, self._next_dispatch):
            dt = self._dispatch_time[task_id]
            if dt is not None and dt > now:
                candidates.append(dt)
            floor = self._issue_floor[task_id]
            if floor > now and self._task_live[task_id]:
                candidates.append(floor)
        future = [c for c in candidates if c > now]
        return min(future) if future else None


def simulate(trace, config=None, policy=None) -> SpeculationStats:
    """Convenience wrapper: run one simulation and return its stats."""
    return MultiscalarSimulator(trace, config=config, policy=policy).run()
