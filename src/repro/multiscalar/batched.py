"""The columnar batched simulation kernel.

A flattened, monomorphic port of the event-driven scheduler in
:mod:`repro.multiscalar.processor`, specialised for the common grid
shape (oracle register model, telemetry off).  The object kernel pays
for its generality in CPython dispatch: the inner scan crosses several
method boundaries per entry (``_try_issue`` → ``_intra_task_gate`` →
``policy.may_issue_load`` → ``deny_hints`` → ``_park`` →
``cache.access``), each re-hoisting its attribute loads.  This kernel
advances many entries per step inside ONE loop body over shared
struct-of-arrays columns (:class:`~repro.frontend.columns.TraceColumns`):

- stateless policy decisions (NEVER/ALWAYS/WAIT/PSYNC) are inlined as
  vectorised-predicate dispatch on precomputed columns — no per-load
  method calls at all;
- trace-pure streams are precomputed once per decoded trace and shared
  across every (config, policy) cell: the cache bank/set/tag geometry
  and the sequencer's correct/mispredict stream (a pure function of the
  task-PC sequence);
- stateful policies (the MDPT/MDST mechanism family, store sets, VSYNC)
  keep their object callbacks — the *kernel* around them is still flat,
  so their runs speed up too while every table update stays
  bit-identical.

Bit-identity with the object kernel is the contract, not a goal: the
port preserves statement order, the no-rollback semantics of
``_park``, the shared hint list across store resolution and issue, the
mid-scan squash behaviour of VSYNC (iteration continues over the
pre-squash entry list), and the compaction arithmetic — all of it
enforced by ``tests/multiscalar/test_kernel_differential.py``.

Runs the kernel cannot reproduce exactly fall back to the object path
(see :func:`supports`): the speculative register models issue on stale
values whose wake conditions the event plans do not track, and
telemetry instrumentation points are deliberately not replicated here.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Dict, List, Optional

from repro.core.stats import SpeculationStats
from repro.frontend.static_index import FU_ORDER, NUM_FU_CLASSES
from repro.memsys.icache import InstructionCache
from repro.multiscalar.policies import (
    WAKE_ADDR_MIN,
    WAKE_COMMIT,
    WAKE_EXEC_MIN,
    WAKE_ISSUE,
    WAKE_RESOLVE,
    WAKE_TIME,
    AlwaysPolicy,
    NeverPolicy,
    PerfectSyncPolicy,
    WaitPolicy,
)
from repro.multiscalar.processor import _INF, SimulationError, _LazyMinSet
from repro.multiscalar.sequencer import PathBasedTaskPredictor

#: Parked entries past the leading inert run absorb into the scan-prefix
#: memo only when their timed wake is at least this far out (or purely
#: event-registered).  Near wakes — FU retries at now+1, short producer
#: latencies — would fold into the prefix's wake and throw the whole
#: memo away almost every cycle; far wakes amortize one reset against
#: many skipped re-walks.  8 cycles measured best on the specint92
#: grid; the choice only affects visit patterns, never results.
_FAR_HORIZON = 8

# Policy kinds with fully inlined issue predicates.  Dispatch is on the
# EXACT type: a subclass may override anything, so it takes the generic
# (object-call) path.
_STATEFUL = 0
_ALWAYS = 1
_NEVER = 2
_WAIT = 3
_PSYNC = 4

_KIND_OF = {
    AlwaysPolicy: _ALWAYS,
    NeverPolicy: _NEVER,
    WaitPolicy: _WAIT,
    PerfectSyncPolicy: _PSYNC,
}


def supports(sim) -> bool:
    """Can the batched kernel reproduce this run bit-identically?

    Two features stay on the object path:

    - non-oracle register models (``conservative``/``always``/
      ``predict``): they issue on stale register values whose
      availability the event wake plans do not track, so the object
      kernel runs them under the cycle scheduler semantics;
    - telemetry-instrumented runs: the kernel does not replicate the
      per-load stall traces and counters (results are identical either
      way — the telemetry A/B suite holds the object path to that — so
      instrumented runs just take the instrumented kernel).
    """
    return sim.config.register_speculation == "oracle" and not sim._tel_on


def _sequencer_stream(task_pcs, history):
    """Replay the path predictor over the static task-PC sequence.

    ``PathBasedTaskPredictor.record`` consumes only the sequence of
    actual next-task PCs, and the simulator feeds it exactly the static
    task order (one record per dispatch, and every task dispatches
    exactly once — squash does not un-dispatch).  The per-dispatch
    correct/mispredict stream is therefore a pure function of
    ``(task_pcs, history)``, shared across every cell over one trace.
    """
    predictor = PathBasedTaskPredictor(history=history)
    record = predictor.record
    stream = [record(pc) for pc in task_pcs[1:]]
    return stream, predictor.predictions, predictor.mispredictions


def run_batched(sim) -> SpeculationStats:
    """Run ``sim`` to completion on the batched kernel.

    Mirrors ``MultiscalarSimulator._run_object`` state-for-state: every
    run attribute is created on ``sim`` (policies, the sanitizer, the
    squash ledger, and the cold-path squash machinery all read them)
    and aliased to locals; containers are shared by reference, so
    mutations made by ``sim`` methods called from here stay visible.
    Only the scalars (``_head``, ``_next_dispatch``) need explicit
    syncing before any call that can read them.
    """
    cfg = sim.config
    n = sim.n
    n_tasks = sim.n_tasks
    policy = sim.policy
    kind = _KIND_OF.get(type(policy), _STATEFUL)
    stateful = kind == _STATEFUL

    cols = sim._index.columns(sim.trace)

    # ---- per-run state, exactly as the object run() creates it ----
    done: List[Optional[int]] = [None] * n
    sim.done = done
    sim.issued = issued = [False] * n
    issue_time: List[Optional[int]] = [None] * n
    sim.issue_time = issue_time
    sim._completed = completed = [False] * n
    sim._epoch = epochs = [0] * n
    sim._reg_spec_mode = cfg.register_speculation
    sim._reg_learned = set()
    events: List[tuple] = []
    sim._events = events
    pending_class: Dict[int, str] = {}
    sim._pending_class = pending_class
    sim._issue_floor = issue_floor = [0] * n_tasks

    sim._unissued_stores = unissued_stores = _LazyMinSet(sim.all_store_seqs)
    sim._unexecuted_stores = unexecuted_stores = _LazyMinSet(sim.all_store_seqs)
    sim._unknown_addr_stores = unknown_addr = _LazyMinSet(sim.all_store_seqs)
    sim._store_perform = store_perform = [0] * n

    dispatch_time: List[Optional[int]] = [None] * n_tasks
    sim._dispatch_time = dispatch_time
    fetch_time: Dict[int, int] = {}
    sim._fetch_time = fetch_time
    sim._icaches = icaches = (
        [InstructionCache() for _ in range(cfg.stages)] if cfg.model_icache else None
    )
    tasks = sim.tasks
    sim._remaining = remaining = [len(seqs) for seqs in tasks]
    task_unissued: Dict[int, List[int]] = {}
    sim._task_unissued = task_unissued
    sim._task_live = task_live = [0] * n_tasks
    sim._head = 0
    sim._next_dispatch = 0
    sim._last_dispatch_time = -cfg.dispatch_latency

    # the sequencer stream is trace-pure: prefill the whole
    # correct/mispredict schedule instead of calling record() per
    # dispatch (entry t is written at task t-1's dispatch and read no
    # earlier than task t's own dispatch-readiness check, so prefilling
    # is unobservable)
    history = cfg.predictor_history
    task_pcs = sim.task_pcs
    stream, total_predictions, total_mispredictions = cols.derived(
        ("sequencer", history),
        lambda: _sequencer_stream(task_pcs, history),
    )
    pending_correct = [True] * (n_tasks + 1)
    if n_tasks > 1:
        pending_correct[1:n_tasks] = stream
    sim._pending_correct = pending_correct
    sim.sequencer = sequencer = PathBasedTaskPredictor(history=history)
    sim._load_first_attempt = {}

    # the batched kernel IS the event-driven scheduling algorithm
    # (bit-identical to the cycle scheduler by construction); sim-side
    # wake helpers (note_load_wake) must see skip mode enabled
    sim._skip_enabled = True
    sim._task_dirty = dirty = [True] * n_tasks
    next_try: List[float] = [0] * n_tasks
    sim._task_next_try = next_try
    wake_on_issue: Dict[int, List[tuple]] = {}
    sim._wake_on_issue = wake_on_issue
    resolve_watchers: Dict[int, List[tuple]] = {}
    sim._resolve_watchers = resolve_watchers
    addr_watchers: List[tuple] = []
    sim._addr_watchers = addr_watchers
    exec_watchers: List[tuple] = []
    sim._exec_watchers = exec_watchers
    commit_watchers: List[tuple] = []
    sim._commit_watchers = commit_watchers
    sim._entry_parked = parked = bytearray(n)
    entry_wake: List[float] = [0.0] * n
    sim._entry_wake = entry_wake
    sim._scan_pos = scan_pos = [0] * n_tasks
    sim._scan_considered = scan_considered = [0] * n_tasks
    scan_wake: List[float] = [_INF] * n_tasks
    sim._scan_wake = scan_wake
    sim._scan_last = scan_last = [-1] * n_tasks

    sim._fu_limits = fu_limits = [cfg.fu_counts[cls] for cls in FU_ORDER]
    latencies = [cfg.fu_latencies[cls] for cls in FU_ORDER]

    policy.bind(sim)

    # ---- hoisted locals (the whole point of this kernel) ----
    stats = sim.stats
    task_of = sim.task_of
    index_in_task = sim.index_in_task
    src_producers = sim.src_producers

    # register producers unrolled into two parallel columns (-1 = none):
    # the ISA has at most two source registers, so the issue loop can
    # check both without tuple iteration overhead
    def _build_src_pair():
        p1 = [-1] * n
        p2 = [-1] * n
        for s, prods in enumerate(src_producers):
            if prods:
                p1[s] = prods[0]
                if len(prods) > 1:
                    p2[s] = prods[1]
        return p1, p2

    src_p1, src_p2 = cols.derived("src_pair", _build_src_pair)
    far_horizon = _FAR_HORIZON

    # more dict-of-the-object-kernel -> column conversions: the oracle
    # producer of each load (-1 = none), the earlier same-task stores
    # gating each load (None = none), and the static completion latency
    # of every non-memory entry (latency depends on the config, so the
    # memo key carries it)
    producers = sim.producers

    def _build_producer_col():
        col = [-1] * n
        for load_seq, store_seq in producers.items():
            if store_seq is not None:
                col[load_seq] = store_seq
        return col

    producer_col = cols.derived("producer_col", _build_producer_col)

    prior_task_stores = sim.prior_task_stores

    def _build_prior_stores_col():
        col: List[Optional[List[int]]] = [None] * n
        for load_seq, stores in prior_task_stores.items():
            col[load_seq] = stores
        return col

    prior_stores_col = cols.derived("prior_stores_col", _build_prior_stores_col)

    fu_code = cols.fu_code

    def _build_static_lat():
        return [latencies[fu_code[s]] for s in range(n)]

    static_lat = cols.derived(("static_lat", tuple(latencies)), _build_static_lat)
    dependents_get = sim.dependents.get
    addr_producer_get = sim.addr_producer.get
    c_addr = sim._c_addr
    c_is_load = sim._c_is_load
    c_is_store = sim._c_is_store
    c_is_memory = sim._c_is_memory
    c_fu = sim._c_fu

    unknown_set = unknown_addr._set
    unknown_min = unknown_addr.minimum
    unknown_discard = unknown_addr.discard
    unissued_discard = unissued_stores.discard
    unexecuted_min = unexecuted_stores.minimum
    unexecuted_discard = unexecuted_stores.discard
    wake_on_issue_pop = wake_on_issue.pop
    wake_on_issue_setdefault = wake_on_issue.setdefault
    resolve_watchers_pop = resolve_watchers.pop
    resolve_watchers_setdefault = resolve_watchers.setdefault

    cache = sim.cache
    ccfg = cache.config
    bank_col, set_col, tag_col = cols.cache_geometry(
        ccfg.banks, ccfg.block_bytes, ccfg.sets_per_bank
    )
    bank_busy = cache._bank_busy_until
    bank_tags = cache._tags
    hit_latency = ccfg.hit_latency
    miss_latency = ccfg.hit_latency + ccfg.miss_penalty
    cache_hits = 0
    cache_misses = 0
    cache_conflicts = 0

    task_n_instr = cols.task_n_instr
    task_n_loads = cols.task_n_loads
    task_n_stores = cols.task_n_stores
    task_load_seqs = cols.task_load_seqs

    find_violation = sim._find_violation
    handle_violation = sim._handle_violation
    schedule_fetch = sim._schedule_fetch
    may_issue_load = policy.may_issue_load
    deny_hints = policy.deny_hints
    on_store_issued = policy.on_store_issued
    on_task_dispatched = policy.on_task_dispatched
    on_task_committed = policy.on_task_committed

    stages = cfg.stages
    rs_window = cfg.rs_window
    issue_width = cfg.issue_width
    fetch_width = cfg.fetch_width
    hop = cfg.ring_hop_latency
    agen = cfg.agen_latency
    dispatch_latency = cfg.dispatch_latency
    mispredict_penalty = cfg.mispredict_penalty

    head = 0
    next_dispatch = 0
    last_dispatch_time = -dispatch_latency
    shared_hints: List[tuple] = []

    now = 0
    idle_cycles = 0
    while head < n_tasks:
        progressed = False

        # ---- completion events (_process_events) --------------------
        store_completed = False
        while events and events[0][0] <= now:
            time, seq, epoch = heappop(events)
            if epoch != epochs[seq] or not issued[seq]:
                continue  # stale (squashed) event
            progressed = True
            completed[seq] = True
            remaining[task_of[seq]] -= 1
            if c_is_store[seq]:
                unexecuted_discard(seq)
                store_completed = True
                if dependents_get(seq) is not None:
                    sim._head = head
                    sim._next_dispatch = next_dispatch
                    violator = find_violation(seq, time)
                    if violator is not None:
                        handle_violation(seq, violator, time)
        if store_completed and exec_watchers:
            m = unexecuted_min()
            while exec_watchers and (m is None or exec_watchers[0][0] <= m):
                _, t_id, s = heappop(exec_watchers)
                parked[s] = 0
                dirty[t_id] = True
                if s <= scan_last[t_id]:
                    scan_pos[t_id] = 0
                    scan_considered[t_id] = 0
                    scan_wake[t_id] = _INF
                    scan_last[t_id] = -1

        # ---- dispatch (_try_dispatch) -------------------------------
        while next_dispatch < n_tasks and next_dispatch - head < stages:
            task_id = next_dispatch
            ready = last_dispatch_time + dispatch_latency
            if not pending_correct[task_id]:
                last_prev = tasks[task_id - 1][-1]
                resolve_t = done[last_prev]
                if resolve_t is None or not issued[last_prev]:
                    break  # misprediction not resolved yet
                alt = resolve_t + mispredict_penalty
                if alt > ready:
                    ready = alt
            if ready > now:
                break
            dispatch_time[task_id] = now
            last_dispatch_time = now
            dirty[task_id] = True
            next_try[task_id] = now
            task_unissued[task_id] = list(tasks[task_id])
            task_live[task_id] = len(tasks[task_id])
            if icaches is not None:
                schedule_fetch(task_id, now)
            next_dispatch += 1
            if stateful:
                sim._head = head
                sim._next_dispatch = next_dispatch
                on_task_dispatched(task_id, now)
            # sequencer.record is replaced by the prefilled stream
            progressed = True
        sim._next_dispatch = next_dispatch

        # ---- issue (_issue_phase with everything inlined) -----------
        for task_id in range(head, next_dispatch):
            if not dirty[task_id] and next_try[task_id] > now:
                continue
            dirty[task_id] = False
            if dispatch_time[task_id] > now:
                continue
            if not task_live[task_id]:
                next_try[task_id] = _INF
                continue
            floor = issue_floor[task_id]
            if floor > now:
                next_try[task_id] = floor
                continue
            unissued = task_unissued[task_id]
            counters = [0] * NUM_FU_CLASSES
            issued_count = 0
            resolved = False
            unparked = 0
            nt_plan = _INF
            dispatch = dispatch_time[task_id]
            fetch_limit = (now - dispatch + 1) * fetch_width
            pfx_pos = scan_pos[task_id]
            pfx_wake = scan_wake[task_id]
            if pfx_pos and now >= pfx_wake:
                pfx_pos = 0
                pfx_wake = _INF
            if pfx_pos:
                considered = scan_considered[task_id]
                new_last = scan_last[task_id]
                if pfx_wake < nt_plan:
                    nt_plan = pfx_wake
                entries = unissued[pfx_pos:]
            else:
                considered = 0
                new_last = -1
                entries = unissued
            new_pos = pfx_pos
            new_considered = considered
            new_wake = pfx_wake
            # Two-tier prefix absorption.  The *leading* inert run (the
            # object kernel's memo) absorbs any parked entry, timed or
            # not — its wake folds into new_wake and resets the memo
            # when due.  Past the first action point, scans keep
            # absorbing (``growing``) but only entries that cannot
            # poison the memo's wake: dead entries and parks whose wake
            # is event-registered (nt == _INF) or at least _FAR_HORIZON
            # out.  Near timed parks there would make pfx_wake fire
            # nearly every cycle and throw the whole prefix away —
            # measurably worse than not absorbing at all.  Stateful
            # runs stop growing at the first *action* point like the
            # object kernel: a mid-scan squash (VSYNC) resets the memos
            # of every task whose prefix could hide revived entries.
            growing = True
            leading = True
            far = now + far_horizon
            for seq in entries:
                if issued[seq]:
                    if growing:
                        new_pos += 1
                    continue  # dead entry awaiting compaction
                considered += 1
                if parked[seq]:
                    wake = entry_wake[seq]
                    if wake > now:
                        if considered > rs_window or issued_count >= issue_width:
                            break
                        if wake < nt_plan:
                            nt_plan = wake
                        if growing:
                            if leading or wake >= far:
                                new_pos += 1
                                new_considered += 1
                                if wake < new_wake:
                                    new_wake = wake
                                new_last = seq
                            else:
                                growing = False
                        continue
                    parked[seq] = 0  # its timed wake is due: rescan
                leading = False
                if stateful:
                    growing = False
                if icaches is None:
                    if index_in_task[seq] >= fetch_limit:
                        fetch = dispatch + index_in_task[seq] // fetch_width
                        if fetch < nt_plan:
                            nt_plan = fetch
                        break
                else:
                    fetch = fetch_time.get(seq, dispatch)
                    if fetch > now:
                        if fetch < nt_plan:
                            nt_plan = fetch
                        break
                if considered <= rs_window and c_is_store[seq] and seq in unknown_set:
                    # ---- _resolve_store_address inline ----
                    producer = addr_producer_get(seq)
                    res_ok = True
                    if producer is not None:
                        p_done = done[producer]
                        if p_done is None:
                            shared_hints.append((WAKE_ISSUE, producer))
                            res_ok = False
                        else:
                            avail = p_done
                            p_task = task_of[producer]
                            if p_task != task_id:
                                avail += hop * (task_id - p_task)
                            if avail + agen > now:
                                shared_hints.append((WAKE_TIME, avail + agen))
                                res_ok = False
                    if res_ok:
                        unknown_discard(seq)
                        if addr_watchers:
                            m = unknown_min()
                            while addr_watchers and (
                                m is None or addr_watchers[0][0] <= m
                            ):
                                _, t_id, s = heappop(addr_watchers)
                                parked[s] = 0
                                dirty[t_id] = True
                                if s <= scan_last[t_id]:
                                    scan_pos[t_id] = 0
                                    scan_considered[t_id] = 0
                                    scan_wake[t_id] = _INF
                                    scan_last[t_id] = -1
                        if seq in resolve_watchers:
                            for t_id, s in resolve_watchers_pop(seq):
                                parked[s] = 0
                                dirty[t_id] = True
                                if s <= scan_last[t_id]:
                                    scan_pos[t_id] = 0
                                    scan_considered[t_id] = 0
                                    scan_wake[t_id] = _INF
                                    scan_last[t_id] = -1
                        resolved = True
                if considered > rs_window or issued_count >= issue_width:
                    if shared_hints:
                        del shared_hints[:]
                    break
                # ---- _try_issue inline (event-plan path) ----
                # Deny sites park *directly* when they can: each site
                # has just verified its own wake condition, so the
                # generic hint-list round trip (_park re-validating
                # every registration) is pure overhead.  direct_nt is
                # the park's timed wake (_INF for pure event wakes);
                # the trailer finishes the park.  Sites that may run
                # with hints already pending (a store whose address
                # resolution left some) fall back to the shared list.
                ok = False
                direct_nt = None
                while True:  # single-pass block: break == return
                    # register producers, unrolled (at most two sources)
                    ready = 0
                    producer = src_p1[seq]
                    if producer >= 0:
                        p_done = done[producer]
                        if p_done is None:
                            if shared_hints:
                                shared_hints.append((WAKE_ISSUE, producer))
                            else:
                                # producer provably unissued: register now
                                wake_on_issue_setdefault(producer, []).append(
                                    (task_id, seq)
                                )
                                direct_nt = _INF
                            break
                        p_task = task_of[producer]
                        if p_task != task_id:
                            p_done += hop * (task_id - p_task)
                        ready = p_done
                        producer = src_p2[seq]
                        if producer >= 0:
                            p_done = done[producer]
                            if p_done is None:
                                if shared_hints:
                                    shared_hints.append((WAKE_ISSUE, producer))
                                else:
                                    wake_on_issue_setdefault(producer, []).append(
                                        (task_id, seq)
                                    )
                                    direct_nt = _INF
                                break
                            p_task = task_of[producer]
                            if p_task != task_id:
                                p_done += hop * (task_id - p_task)
                            if p_done > ready:
                                ready = p_done
                    if ready > now:
                        if shared_hints:
                            shared_hints.append((WAKE_TIME, ready))
                        else:
                            direct_nt = ready
                        break
                    fu = c_fu[seq]
                    if counters[fu] >= fu_limits[fu]:
                        # a full complement already issued into this
                        # class this scan; retry when the units free
                        if shared_hints:
                            shared_hints.append((WAKE_TIME, now + 1))
                        else:
                            direct_nt = now + 1
                        break
                    if c_is_load[seq]:
                        addr = c_addr[seq]
                        # ---- _intra_task_gate inline ----
                        # loads reach here with shared_hints empty (the
                        # resolve step runs for stores only), so every
                        # gate deny parks directly
                        gated = False
                        pts = prior_stores_col[seq]
                        if pts is not None:
                            for store_seq in pts:
                                if store_seq in unknown_set:
                                    resolve_watchers_setdefault(
                                        store_seq, []
                                    ).append((task_id, seq))
                                    direct_nt = _INF
                                    gated = True
                                    break
                                if c_addr[store_seq] == addr:
                                    s_done = done[store_seq]
                                    if s_done is None:
                                        wake_on_issue_setdefault(
                                            store_seq, []
                                        ).append((task_id, seq))
                                        direct_nt = _INF
                                        gated = True
                                        break
                                    if s_done > now:
                                        direct_nt = s_done
                                        gated = True
                                        break
                        if gated:
                            break
                        # ---- policy.may_issue_load / deny_hints,
                        #      specialised per stateless kind ----
                        if kind == _ALWAYS:
                            pass
                        elif kind == _PSYNC:
                            producer = producer_col[seq]
                            if producer >= 0 and not issued[producer]:
                                wake_on_issue_setdefault(producer, []).append(
                                    (task_id, seq)
                                )
                                direct_nt = _INF
                                break
                        elif kind == _NEVER:
                            m = unknown_min()
                            producer = producer_col[seq]
                            if (m is not None and m < seq) or (
                                producer >= 0 and not issued[producer]
                            ):
                                # registration order mirrors deny_hints:
                                # ADDR_MIN, then ISSUE
                                if m is not None and m < seq:
                                    heappush(addr_watchers, (seq, task_id, seq))
                                if producer >= 0 and not issued[producer]:
                                    wake_on_issue_setdefault(producer, []).append(
                                        (task_id, seq)
                                    )
                                direct_nt = _INF
                                break
                        elif kind == _WAIT:
                            producer = producer_col[seq]
                            if producer >= 0 and task_of[producer] >= head:
                                m = unknown_min()
                                if (m is not None and m < seq) or not issued[
                                    producer
                                ]:
                                    # registration order mirrors deny_hints:
                                    # COMMIT, ADDR_MIN, ISSUE
                                    heappush(
                                        commit_watchers,
                                        (task_of[producer], task_id, seq),
                                    )
                                    if m is not None and m < seq:
                                        heappush(
                                            addr_watchers, (seq, task_id, seq)
                                        )
                                    if not issued[producer]:
                                        wake_on_issue_setdefault(
                                            producer, []
                                        ).append((task_id, seq))
                                    direct_nt = _INF
                                    break
                        else:
                            sim._head = head
                            if not may_issue_load(seq, now):
                                hints = deny_hints(seq, now)
                                if hints:
                                    shared_hints.extend(hints)
                                else:
                                    # the policy does not model its wake
                                    # conditions: re-ask every cycle
                                    shared_hints.append((WAKE_TIME, now + 1))
                                break
                    if c_is_memory[seq]:
                        # ---- BankedCache.access inline over the
                        #      precomputed geometry columns ----
                        t_access = now + agen
                        bank = bank_col[seq]
                        busy = bank_busy[bank]
                        if busy > t_access:
                            cache_conflicts += busy - t_access
                            start = busy
                        else:
                            start = t_access
                        bank_busy[bank] = start + 1
                        tags = bank_tags[bank]
                        set_idx = set_col[seq]
                        tag = tag_col[seq]
                        if tags.get(set_idx) == tag:
                            cache_hits += 1
                            completion = start + hit_latency
                        else:
                            cache_misses += 1
                            tags[set_idx] = tag
                            completion = start + miss_latency
                    else:
                        completion = now + static_lat[seq]
                    counters[fu] += 1
                    issued[seq] = True
                    issue_time[seq] = now
                    done[seq] = completion
                    # ---- _fire_issue_wakes inline ----
                    if seq in wake_on_issue:
                        for t_id, s in wake_on_issue_pop(seq):
                            parked[s] = 0
                            dirty[t_id] = True
                            if s <= scan_last[t_id]:
                                scan_pos[t_id] = 0
                                scan_considered[t_id] = 0
                                scan_wake[t_id] = _INF
                                scan_last[t_id] = -1
                    if c_is_store[seq]:
                        unissued_discard(seq)
                        unknown_discard(seq)
                        if addr_watchers:
                            m = unknown_min()
                            while addr_watchers and (
                                m is None or addr_watchers[0][0] <= m
                            ):
                                _, t_id, s = heappop(addr_watchers)
                                parked[s] = 0
                                dirty[t_id] = True
                                if s <= scan_last[t_id]:
                                    scan_pos[t_id] = 0
                                    scan_considered[t_id] = 0
                                    scan_wake[t_id] = _INF
                                    scan_last[t_id] = -1
                        if seq in resolve_watchers:
                            for t_id, s in resolve_watchers_pop(seq):
                                parked[s] = 0
                                dirty[t_id] = True
                                if s <= scan_last[t_id]:
                                    scan_pos[t_id] = 0
                                    scan_considered[t_id] = 0
                                    scan_wake[t_id] = _INF
                                    scan_last[t_id] = -1
                        store_perform[seq] = now + 1
                        if stateful:
                            # VSYNC may squash from in here; the scan
                            # then keeps iterating the pre-squash entry
                            # list, exactly like the object kernel
                            sim._head = head
                            on_store_issued(seq, now)
                    heappush(events, (completion, seq, epochs[seq]))
                    ok = True
                    break
                if ok:
                    # a store can issue with its failed-resolve hints
                    # still pending; drop them (hints are cleared lazily
                    # at consumption sites, not per entry)
                    if shared_hints:
                        del shared_hints[:]
                    issued_count += 1
                    progressed = True
                    # the entry is dead now, and same-task wake targets
                    # always sit ahead of the iterator (consumers follow
                    # producers in seq order), so nothing behind new_pos
                    # can come alive without resetting the whole memo
                    if growing:
                        new_pos += 1
                elif direct_nt is not None:
                    # registrations already made at the deny site
                    entry_wake[seq] = direct_nt
                    parked[seq] = 1
                    if direct_nt < nt_plan:
                        nt_plan = direct_nt
                    if growing:
                        if direct_nt >= far:
                            # event-registered or far timed wake: absorbable
                            new_pos += 1
                            new_considered += 1
                            if direct_nt < new_wake:
                                new_wake = direct_nt
                            new_last = seq
                        else:
                            growing = False
                elif shared_hints:
                    # ---- _park inline (no rollback on failure: earlier
                    # registrations stay, exactly like the object path) ----
                    nt = _INF
                    park_ok = True
                    for kind_h, arg in shared_hints:
                        if kind_h == WAKE_TIME:
                            if arg < nt:
                                nt = arg
                        elif kind_h == WAKE_ISSUE:
                            if issued[arg]:
                                park_ok = False
                                break
                            wake_on_issue_setdefault(arg, []).append((task_id, seq))
                        elif kind_h == WAKE_RESOLVE:
                            if arg not in unknown_set:
                                park_ok = False
                                break
                            resolve_watchers_setdefault(arg, []).append(
                                (task_id, seq)
                            )
                        elif kind_h == WAKE_ADDR_MIN:
                            m = unknown_min()
                            if m is None or m >= arg:
                                park_ok = False
                                break
                            heappush(addr_watchers, (arg, task_id, seq))
                        elif kind_h == WAKE_EXEC_MIN:
                            m = unexecuted_min()
                            if m is None or m >= arg:
                                park_ok = False
                                break
                            heappush(exec_watchers, (arg, task_id, seq))
                        elif kind_h == WAKE_COMMIT:
                            if head > arg:
                                park_ok = False
                                break
                            heappush(commit_watchers, (arg, task_id, seq))
                    del shared_hints[:]
                    if park_ok and nt > now:
                        entry_wake[seq] = nt
                        parked[seq] = 1
                        if nt < nt_plan:
                            nt_plan = nt
                        if growing:
                            if nt >= far:
                                # event-registered or far timed wake: absorbable
                                new_pos += 1
                                new_considered += 1
                                if nt < new_wake:
                                    new_wake = nt
                                new_last = seq
                            else:
                                growing = False
                    else:
                        unparked += 1
                        growing = False
                else:
                    # the deny produced no wake condition; fall back to
                    # per-cycle rescans for this entry
                    unparked += 1
                    growing = False
            scan_pos[task_id] = new_pos
            scan_considered[task_id] = new_considered
            scan_wake[task_id] = new_wake
            scan_last[task_id] = new_last
            if issued_count:
                live_left = task_live[task_id] - issued_count
                task_live[task_id] = live_left
                if len(unissued) - live_left >= 64 and live_left * 2 < len(unissued):
                    # mostly dead: compact so later scans stay short
                    task_unissued[task_id] = [s for s in unissued if not issued[s]]
                    scan_pos[task_id] = 0
                    scan_considered[task_id] = 0
                    scan_wake[task_id] = _INF
                    scan_last[task_id] = -1
            if issued_count or resolved or unparked:
                next_try[task_id] = now + 1
            elif nt_plan < _INF:
                next_try[task_id] = nt_plan if nt_plan > now else now + 1
            else:
                next_try[task_id] = _INF

        # ---- commit (_try_commit) -----------------------------------
        while head < n_tasks and remaining[head] == 0:
            task_id = head
            stats.committed_instructions += task_n_instr[task_id]
            stats.committed_loads += task_n_loads[task_id]
            stats.committed_stores += task_n_stores[task_id]
            if pending_class:
                breakdown = stats.breakdown
                for seq in task_load_seqs[task_id]:
                    bucket = pending_class.pop(seq, "nn")
                    setattr(breakdown, bucket, getattr(breakdown, bucket) + 1)
            else:
                stats.breakdown.nn += task_n_loads[task_id]
            stats.tasks_committed += 1
            if stateful:
                sim._head = head
                sim._next_dispatch = next_dispatch
                on_task_committed(task_id, now)
            head += 1
            sim._head = head
            progressed = True
            if commit_watchers:  # _fire_commit_watchers inline
                while commit_watchers and commit_watchers[0][0] < head:
                    _, t_id, s = heappop(commit_watchers)
                    parked[s] = 0
                    dirty[t_id] = True
                    if s <= scan_last[t_id]:
                        scan_pos[t_id] = 0
                        scan_considered[t_id] = 0
                        scan_wake[t_id] = _INF
                        scan_last[t_id] = -1

        if head >= n_tasks:
            break
        if progressed:
            idle_cycles = 0
            now += 1
            continue
        # ---- _next_event_time inline --------------------------------
        candidates = []
        while events:
            time, seq, epoch = events[0]
            if epoch != epochs[seq] or not issued[seq]:
                heappop(events)
                continue
            candidates.append(time)
            break
        if next_dispatch < n_tasks and next_dispatch - head < stages:
            ready = last_dispatch_time + dispatch_latency
            if not pending_correct[next_dispatch]:
                last_prev = tasks[next_dispatch - 1][-1]
                resolve_t = done[last_prev]
                if resolve_t is None or not issued[last_prev]:
                    ready = None
                else:
                    alt = resolve_t + mispredict_penalty
                    if alt > ready:
                        ready = alt
            if ready is not None:
                candidates.append(ready)
        for task_id in range(head, next_dispatch):
            dt = dispatch_time[task_id]
            if dt is not None and dt > now:
                candidates.append(dt)
            floor = issue_floor[task_id]
            if floor > now and task_live[task_id]:
                candidates.append(floor)
        future = [c for c in candidates if c > now]
        next_time = min(future) if future else None
        if next_time is not None and next_time > now:
            now = next_time
            idle_cycles = 0
        else:
            now += 1
            idle_cycles += 1
            if idle_cycles > 100_000:
                raise SimulationError(
                    "no progress for %d cycles at t=%d (head task %d of %d)"
                    % (idle_cycles, now, head, n_tasks)
                )

    # ---- finalise ----------------------------------------------------
    sim._head = head
    sim._next_dispatch = next_dispatch
    sim._last_dispatch_time = last_dispatch_time
    cache.hits += cache_hits
    cache.misses += cache_misses
    cache.bank_conflict_cycles += cache_conflicts
    sequencer.predictions = total_predictions
    sequencer.mispredictions = total_mispredictions
    stats.cycles = now
    stats.control_mispredictions = total_mispredictions
    return stats
