"""Dynamic taint sanitizer: the runtime oracle for the leak verdicts.

The static pass in :mod:`repro.staticdep.spectaint` *claims* which
store→load pairs can leak transient secrets; this module *observes*.
A :class:`TaintSanitizer` attaches to a
:class:`~repro.multiscalar.processor.MultiscalarSimulator` and fires on
every memory-dependence violation — exactly the moments a load has
consumed stale data inside a mis-speculation window, between its
speculative issue and the squash.  Using an exact two-point taint
replay of the committed trace it decides whether the stale value the
load observed was secret-tagged, and whether the transient value
reached a *transmitter* before the squash (an issued consumer using it
to form a memory address, or a resolved branch/jump) by walking the
trace's register/forwarding dataflow over the currently issued window.

:func:`cross_check_leaks` then holds the static verdicts to those
observations, mirroring the reaching-stores soundness contract in
:mod:`repro.staticdep.checker`:

* any transient-secret observation on a pair classified ``NO_LEAK``
  for reasons ``no-alias``, ``window-zero``, or ``stale-public`` is a
  contradiction — those claims say the observation cannot happen;
* a *transmitted* observation on a ``no-transmitter`` pair is a
  contradiction — un-transmitted stale-secret reads are permitted
  there (the claim is only that the value cannot escape);
* observations on ``LEAK`` / ``GATED`` pairs are the expected true
  positives.

A contradiction is a soundness bug and a hard test failure.

The sanitizer counts its events unconditionally and deterministically —
the event/cycle schedulers must produce bit-identical counts (A/B
tested) — and additionally publishes telemetry counters when the bound
simulator's registry is enabled, following the zero-overhead contract
of :mod:`repro.telemetry`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa.opcodes import Opcode
from repro.staticdep.spectaint import (
    GATED,
    LEAK,
    NO_LEAK,
    R_NO_TRANSMITTER,
    R_PRIMABLE,
    SpecTaintAnalysis,
    TaintReplay,
    analyze_spec_leaks,
    taint_replay,
    valid_ranges,
)


@dataclass(frozen=True)
class SanitizerEvent:
    """One transient-secret observation.

    A violated load read stale secret-tagged data during its
    mis-speculation window; ``transmitted`` records whether the value
    reached an address- or branch-forming use among the instructions
    issued before the squash."""

    store_pc: int
    load_pc: int
    store_seq: int
    load_seq: int
    time: int
    transmitted: bool

    @property
    def pair(self) -> Tuple[int, int]:
        return (self.store_pc, self.load_pc)

    def to_dict(self) -> Dict[str, object]:
        return {
            "store_pc": self.store_pc,
            "load_pc": self.load_pc,
            "store_seq": self.store_seq,
            "load_seq": self.load_seq,
            "time": self.time,
            "transmitted": self.transmitted,
        }


class TaintSanitizer:
    """Observes a simulator's violations for transient secret reads.

    Construct it over the trace (the taint replay is a function of the
    committed execution alone), pass it to the simulator's
    ``sanitizer=`` parameter, and read ``events`` after ``run()``.
    One sanitizer serves one simulation; build a fresh one per run.
    """

    def __init__(self, trace, secret_ranges=None, replay: Optional[TaintReplay] = None):
        self.trace = trace
        declared = (
            trace.program.secret_ranges if secret_ranges is None else secret_ranges
        )
        self.secret_ranges = valid_ranges(declared)
        self.replay = replay or taint_replay(trace, self.secret_ranges)
        self.events: List[SanitizerEvent] = []
        self.violations = 0
        self._sim = None

    def bind(self, sim):
        """Adopt the simulator whose violations this sanitizer watches
        (called by the simulator's constructor)."""
        self._sim = sim
        return self

    # -- the violation hook ---------------------------------------------

    def on_violation(self, store_seq, load_seq, time):
        """Called by the simulator on every detected violation, before
        the squash — the issued flags still describe the window."""
        self.violations += 1
        if not self.replay.stale_before_store.get(store_seq, False):
            return  # the stale value was public: nothing to observe
        sim = self._sim
        transmitted = self._transmitted(load_seq)
        event = SanitizerEvent(
            store_pc=sim._c_pc[store_seq],
            load_pc=sim._c_pc[load_seq],
            store_seq=store_seq,
            load_seq=load_seq,
            time=time,
            transmitted=transmitted,
        )
        self.events.append(event)
        if sim._tel_on:
            metrics = sim.telemetry.metrics
            metrics.counter("sanitizer.transient_secret_reads").inc()
            if transmitted:
                metrics.counter("sanitizer.transmitted_reads").inc()
            sim.telemetry.trace.instant(
                "transient-secret store@%d->load@%d"
                % (event.store_pc, event.load_pc),
                ts=time,
                tid=sim.task_of[load_seq] % sim.config.stages,
                cat="sanitizer",
                args=event.to_dict(),
            )

    def _transmitted(self, load_seq) -> bool:
        """Did the transient value reach a transmitter inside the
        window?  Forward dataflow walk from the violated load over the
        *currently issued* instructions: register edges via the trace's
        producer→consumer map, memory edges via store→load forwarding.
        This is the dynamic counterpart of the static transmitter
        slice, and by construction a subset of it."""
        sim = self._sim
        index = sim._index
        issued = sim.issued
        entries = self.trace.entries
        carriers = {load_seq}
        tainted_stores = set()
        stack = [load_seq]
        while stack:
            producer = stack.pop()
            for consumer in index.reg_dependents.get(producer, ()):
                if not issued[consumer]:
                    continue
                inst = entries[consumer].inst
                addr_use = data_use = value_use = False
                for reg, src, _ in index.src_operands[consumer]:
                    if src != producer:
                        continue
                    if inst.is_memory and reg == inst.rs1:
                        addr_use = True
                    elif inst.is_store and reg == inst.rs2:
                        data_use = True
                    else:
                        value_use = True
                if not (addr_use or data_use or value_use):
                    continue
                if addr_use:
                    return True  # address-forming use of a transient value
                if inst.is_branch or inst.op is Opcode.JR:
                    return True  # control decided by a transient value
                if inst.is_store and data_use and consumer not in tainted_stores:
                    tainted_stores.add(consumer)
                    for load in index.dependents.get(consumer, ()):
                        if issued[load] and load not in carriers:
                            carriers.add(load)
                            stack.append(load)
                elif (
                    value_use
                    and not inst.is_memory
                    and inst.rd is not None
                    and inst.rd != 0
                    and consumer not in carriers
                ):
                    carriers.add(consumer)
                    stack.append(consumer)
        return False

    # -- aggregation ------------------------------------------------------

    def pair_counts(self) -> Dict[Tuple[int, int], int]:
        """Transient-secret observations per static pair."""
        counts: Dict[Tuple[int, int], int] = {}
        for event in self.events:
            counts[event.pair] = counts.get(event.pair, 0) + 1
        return counts

    def transmitted_pairs(self) -> List[Tuple[int, int]]:
        return sorted({e.pair for e in self.events if e.transmitted})

    def summary(self) -> Dict[str, object]:
        return {
            "violations": self.violations,
            "transient_secret_reads": len(self.events),
            "transmitted_reads": sum(e.transmitted for e in self.events),
            "observed_pairs": sorted({e.pair for e in self.events}),
        }


# ---------------------------------------------------------------------------
# static-vs-dynamic cross-check
# ---------------------------------------------------------------------------

#: NO_LEAK reasons whose claim forbids *any* transient-secret read.
_HARD_NO_LEAK_REASONS = ("no-alias", "window-zero", "stale-public")


@dataclass
class LeakCrossCheck:
    """The static leak verdicts held against one simulation's events."""

    analysis: SpecTaintAnalysis
    events: List[SanitizerEvent]
    contradictions: List[str] = field(default_factory=list)

    @property
    def sound(self) -> bool:
        return not self.contradictions

    @property
    def flagged_pairs(self) -> List[Tuple[int, int]]:
        """Pairs the static pass says can leak (LEAK or GATED)."""
        return sorted(
            v.pair for v in self.analysis.verdicts if v.verdict in (LEAK, GATED)
        )

    @property
    def observed_pairs(self) -> List[Tuple[int, int]]:
        return sorted({e.pair for e in self.events})

    @property
    def precision(self) -> float:
        """Fraction of statically flagged pairs dynamically observed."""
        flagged = self.flagged_pairs
        if not flagged:
            return 1.0
        observed = set(self.observed_pairs)
        return sum(1 for p in flagged if p in observed) / len(flagged)

    @property
    def recall(self) -> float:
        """Fraction of observed transient-secret pairs the static pass
        flagged — 1.0 whenever the check is sound and every observation
        transmitted."""
        observed = self.observed_pairs
        if not observed:
            return 1.0
        flagged = set(self.flagged_pairs)
        return sum(1 for p in observed if p in flagged) / len(observed)

    def summary(self) -> Dict[str, object]:
        return {
            "sound": self.sound,
            "contradictions": list(self.contradictions),
            "flagged_pairs": [list(p) for p in self.flagged_pairs],
            "observed_pairs": [list(p) for p in self.observed_pairs],
            "precision": round(self.precision, 3),
            "recall": round(self.recall, 3),
        }


def cross_check_leaks(
    analysis: SpecTaintAnalysis, sanitizer: TaintSanitizer
) -> LeakCrossCheck:
    """Hold the static verdicts to the sanitizer's observations.

    Returns a :class:`LeakCrossCheck`; ``.sound`` is False iff some
    NO_LEAK claim was contradicted at runtime (see module docstring
    for the exact rules)."""
    by_pair = {v.pair: v for v in analysis.verdicts}
    contradictions: List[str] = []
    for event in sanitizer.events:
        verdict = by_pair.get(event.pair)
        if verdict is None:
            contradictions.append(
                "transient secret on pair (store %d, load %d) absent from "
                "the static verdict set" % event.pair
            )
            continue
        if verdict.verdict != NO_LEAK:
            continue  # LEAK/GATED observations are expected true positives
        if verdict.reason in _HARD_NO_LEAK_REASONS:
            contradictions.append(
                "NO_LEAK(%s) on pair (store %d, load %d) contradicted: "
                "stale secret observed at t=%d"
                % (verdict.reason, event.store_pc, event.load_pc, event.time)
            )
        elif verdict.reason == R_NO_TRANSMITTER and event.transmitted:
            contradictions.append(
                "NO_LEAK(%s) on pair (store %d, load %d) contradicted: "
                "transient secret transmitted at t=%d"
                % (verdict.reason, event.store_pc, event.load_pc, event.time)
            )
    return LeakCrossCheck(
        analysis=analysis, events=list(sanitizer.events), contradictions=contradictions
    )


# ---------------------------------------------------------------------------
# one-call driver (the CLI's `repro leakcheck` and the experiment use it)
# ---------------------------------------------------------------------------


@dataclass
class LeakCheckResult:
    """Everything one leak check produces."""

    analysis: SpecTaintAnalysis
    sanitizer: TaintSanitizer
    check: LeakCrossCheck
    policy: str

    @property
    def clean(self) -> bool:
        """No findings: nothing can leak and the oracle agrees."""
        counts = self.analysis.verdict_counts()
        return counts[LEAK] == 0 and counts[GATED] == 0 and self.check.sound

    def summary(self) -> Dict[str, object]:
        payload = dict(self.analysis.summary())
        payload["policy"] = self.policy
        payload["dynamic"] = self.sanitizer.summary()
        payload["cross_check"] = self.check.summary()
        return payload


def check_program_leaks(
    program,
    secret_ranges=None,
    policy: str = "always",
    config=None,
    analysis: Optional[SpecTaintAnalysis] = None,
) -> LeakCheckResult:
    """Run the full static + dynamic leak check on one program.

    The default ``always`` (blind speculation) policy maximizes the
    mis-speculation windows, making the dynamic oracle as adversarial
    as the simulator allows."""
    from repro.frontend import run_program
    from repro.multiscalar.config import MultiscalarConfig
    from repro.multiscalar.policies import make_policy
    from repro.multiscalar.processor import MultiscalarSimulator

    if analysis is None:
        analysis = analyze_spec_leaks(program, secret_ranges)
    trace = run_program(program)
    sanitizer = TaintSanitizer(trace, secret_ranges=analysis.secret_ranges)
    sim = MultiscalarSimulator(
        trace,
        config or MultiscalarConfig(),
        make_policy(policy),
        sanitizer=sanitizer,
    )
    sim.run()
    return LeakCheckResult(
        analysis=analysis,
        sanitizer=sanitizer,
        check=cross_check_leaks(analysis, sanitizer),
        policy=policy,
    )
