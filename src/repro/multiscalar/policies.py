"""Data dependence speculation policies (paper Sections 5.4 and 5.5).

Four reference policies plus the proposed mechanism:

* ``NEVER`` — no data dependence speculation: a load may access memory
  only after every preceding in-flight store has computed its address
  and any matching store has executed.
* ``ALWAYS`` — blind speculation (the policy of the era's OoO
  processors): a load accesses memory as soon as its address is ready.
* ``WAIT`` — selective speculation with perfect dependence prediction:
  loads with a true in-window dependence are not speculated (they wait
  for address resolution of all earlier stores); independent loads run
  free.  No explicit synchronization — this is the policy Figure 1(d)
  shows losing to blind speculation.
* ``PSYNC`` — perfect prediction *and* perfect synchronization: a
  dependent load waits exactly until its producing store executes; the
  upper bound for the proposed mechanism.
* ``MECHANISM`` — the MDPT/MDST implementation of Section 4 with a
  pluggable predictor ("always", "sync", or "esync").

Each policy instance is single-run state; create a fresh one per
simulation.
"""

from __future__ import annotations

from typing import Dict

from repro.core.engine import SynchronizationEngine
from repro.core.mdpt import MDPT
from repro.core.mdst import MDST
from repro.core.predictors import make_predictor
from repro.core.unified import SlottedMDST
from repro.telemetry import NULL_TELEMETRY


# Wake-hint kinds returned by :meth:`SpeculationPolicy.deny_hints`.
# The event-driven scheduler uses them to decide when a denied load's
# stage must be rescanned; each hint names one condition under which
# the policy's answer could change.
WAKE_TIME = 0      # rescan at the absolute cycle in ``arg``
WAKE_ISSUE = 1     # rescan when instruction ``arg`` issues
WAKE_ADDR_MIN = 2  # rescan once no store older than ``arg`` has an unknown address
WAKE_EXEC_MIN = 3  # rescan once every store older than ``arg`` has executed
WAKE_COMMIT = 4    # rescan once the window head has advanced past task ``arg``
WAKE_RESOLVE = 5   # rescan when store ``arg``'s address resolves


class SpeculationPolicy:
    """Interface between the timing simulator and a speculation policy."""

    name = "abstract"

    def bind(self, sim):
        """Attach to a simulator instance before the run starts."""
        self.sim = sim

    def may_issue_load(self, seq, now) -> bool:
        """May the operand-ready load *seq* access memory at *now*?

        Under the legacy cycle scheduler this is consulted once per
        cycle per ready load until it returns True.  The event-driven
        scheduler instead consults it only on cycles where one of the
        load's :meth:`deny_hints` conditions fired — the grant/deny
        *decisions* are identical, the number of consultations is not.
        """
        raise NotImplementedError

    def deny_hints(self, seq, now):
        """Why was load *seq* just denied, as wake conditions?

        Called by the event-driven scheduler immediately after
        :meth:`may_issue_load` returned False.  Returns a list of
        ``(WAKE_*, arg)`` tuples that together cover every way the
        denial could lift; the load's stage is rescanned when any of
        them fires.  Returning None (the default, and the safe answer
        for any policy that does not model its own wake conditions)
        makes the scheduler fall back to rescanning the stage every
        cycle — always correct, merely slower.
        """
        return None

    def on_store_issued(self, seq, now):
        """A store issued: its address and data just entered the ARB."""

    def on_store_executed(self, seq, now):
        """A store (re-)announced after a violation it caused."""

    def on_violation(self, store_seq, load_seq, now):
        """A dependence mis-speculation was detected."""

    def absolves_violation(self, store_seq, load_seq) -> bool:
        """True when an apparent order violation is actually fine —
        e.g. the load ran early on a correctly predicted value."""
        return False

    def on_squash(self, first_seq, now):
        """Instruction *first_seq* and everything younger were squashed."""

    def explain_violation(self, store_seq, load_seq) -> Dict[str, object]:
        """The policy's view of a violation it just suffered, as one
        JSON-able dict — consulted by the squash ledger
        (:mod:`repro.multiscalar.explain`) *after* :meth:`on_violation`
        and before the squash, so predictor tables already reflect the
        mis-speculation.  Must not mutate policy state.  The base
        answer: the policy held no per-pair state that could have
        prevented the squash."""
        return {"decision": "speculated", "pair_state": None}

    def on_task_dispatched(self, task_id, now):
        """A task entered the window (its instructions are now fetched)."""

    def on_task_committed(self, task_id, now):
        """The head task committed (apply non-speculative updates)."""

    def publish_telemetry(self, telemetry):
        """Publish end-of-run metrics (called once after the run when
        telemetry is enabled; must not mutate policy state)."""


class AlwaysPolicy(SpeculationPolicy):
    """Blind speculation."""

    name = "ALWAYS"

    def may_issue_load(self, seq, now):
        return True


class NeverPolicy(SpeculationPolicy):
    """No data dependence speculation."""

    name = "NEVER"

    def may_issue_load(self, seq, now):
        sim = self.sim
        return sim.all_prior_stores_issued(seq) and not sim.producer_pending(seq)

    def deny_hints(self, seq, now):
        sim = self.sim
        hints = []
        m = sim._unknown_addr_stores.minimum()
        if m is not None and m < seq:
            hints.append((WAKE_ADDR_MIN, seq))
        producer = sim.producers.get(seq)
        if producer is not None and not sim.issued[producer]:
            hints.append((WAKE_ISSUE, producer))
        return hints or None


class WaitPolicy(SpeculationPolicy):
    """Selective speculation with perfect dependence prediction.

    A load predicted dependent (its producing store is inside the
    current window) is simply *not speculated*: with no explicit
    synchronization it cannot tell which of the preceding stores feeds
    it, so it waits until the addresses of all earlier unexecuted
    stores are known to differ and any matching store has executed —
    even if its actual producer finished long ago (Figure 1(d)).
    """

    name = "WAIT"

    def may_issue_load(self, seq, now):
        sim = self.sim
        producer = sim.producers.get(seq)
        if producer is None or sim.task_of[producer] < sim.head_task:
            return True  # no true dependence within the current window
        return sim.all_prior_stores_issued(seq) and not sim.producer_pending(seq)

    def deny_hints(self, seq, now):
        sim = self.sim
        # the denial can also lift when the producer's task commits out
        # of the window (the load then counts as independent)
        hints = [(WAKE_COMMIT, sim.task_of[sim.producers[seq]])]
        m = sim._unknown_addr_stores.minimum()
        if m is not None and m < seq:
            hints.append((WAKE_ADDR_MIN, seq))
        producer = sim.producers.get(seq)
        if producer is not None and not sim.issued[producer]:
            hints.append((WAKE_ISSUE, producer))
        return hints


class PerfectSyncPolicy(SpeculationPolicy):
    """Perfect prediction and synchronization (upper bound)."""

    name = "PSYNC"

    def may_issue_load(self, seq, now):
        return not self.sim.producer_pending(seq)

    def deny_hints(self, seq, now):
        producer = self.sim.producers.get(seq)
        if producer is None:
            return None
        return [(WAKE_ISSUE, producer)]


class MechanismPolicy(SpeculationPolicy):
    """The proposed MDPT/MDST mechanism (paper Section 5.5).

    The evaluated organization combines both tables: *capacity* MDPT
    entries, each carrying one synchronization slot per stage
    (``structure="unified"``, the paper's Section 5.5 configuration).
    ``structure="split"`` keeps a separate MDST pool of
    ``mdst_capacity`` entries instead.  Dynamic dependence edges are
    tagged with the instance distance by default (``tagging=
    "distance"``); ``tagging="address"`` uses the accessed data address
    as the handle instead — the alternative of Section 3 that the
    ablation benchmarks compare.  Predictor updates are buffered per
    task and applied only when the task commits (non-speculative
    updates, per the paper).
    """

    _NOT_SEEN, _PARKED, _CLEARED = 0, 1, 2

    def __init__(
        self,
        predictor="sync",
        capacity=64,
        structure="unified",
        tagging="distance",
        mdst_capacity=None,
        **predictor_kwargs,
    ):
        if structure not in ("unified", "split"):
            raise ValueError("unknown structure %r" % (structure,))
        if tagging not in ("distance", "address"):
            raise ValueError("unknown tagging %r" % (tagging,))
        self.predictor_name = predictor
        self.capacity = capacity
        self.structure = structure
        self.tagging = tagging
        self.mdst_capacity = mdst_capacity
        self.predictor_kwargs = predictor_kwargs
        self.engine = None

    @property
    def name(self):
        return self.predictor_name.upper()

    def _instance_of(self, entry):
        """The dynamic tag: task id (distance tagging, the paper's
        evaluated scheme) or the accessed data address."""
        if self.tagging == "distance":
            return entry.task_id
        return entry.addr

    def bind(self, sim):
        super().bind(sim)
        stages = sim.config.stages
        predictor = make_predictor(self.predictor_name, **self.predictor_kwargs)
        mdpt = MDPT(self.capacity, predictor)
        if self.structure == "unified":
            mdst = SlottedMDST(self.capacity * stages, slots_per_pair=stages)
        else:
            mdst = MDST(self.mdst_capacity or self.capacity * stages)
        # tolerate facade sims (tests, notebooks) without a telemetry slot
        self._telemetry = getattr(sim, "telemetry", NULL_TELEMETRY)
        self.engine = SynchronizationEngine(
            mdpt, mdst, metrics=self._telemetry.metrics
        )
        n = len(sim.trace)
        self._status = [self._NOT_SEEN] * n
        self._wake_time = [0] * n
        # per-task buffers of deferred predictor updates: (kind, pair)
        self._pending_updates: Dict[int, list] = {}

    # -- helpers ---------------------------------------------------------

    def _sample_occupancy(self, now):
        """Table occupancy and condition-variable pool pressure at *now*.

        Sampled at task dispatch and commit — the points where the
        window (and with it the tables' working set) changes shape.
        """
        metrics = self._telemetry.metrics
        mdpt, mdst = self.engine.mdpt, self.engine.mdst
        waiting = sum(1 for e in mdst if e.waiting)
        metrics.series("mdpt.occupancy").sample(now, len(mdpt))
        metrics.series("mdst.occupancy").sample(now, len(mdst))
        metrics.series("mdst.waiting_loads").sample(now, waiting)
        trace = self._telemetry.trace
        trace.counter("MDPT occupancy", now, {"entries": len(mdpt)})
        trace.counter(
            "MDST occupancy", now, {"waiting": waiting, "full": len(mdst) - waiting}
        )

    def _defer(self, seq, kind, payload):
        task_id = self.sim.trace[seq].task_id
        self._pending_updates.setdefault(task_id, []).append((kind, payload, seq))

    def _park_or_clear(self, seq, now):
        """First attempt: run the load through the MDPT/MDST."""
        sim = self.sim
        entry = sim.trace[seq]
        task_id = entry.task_id
        result = self.engine.load_request(
            entry.pc,
            self._instance_of(entry),
            seq,
            task_pc_of=sim.task_pc_at if self.tagging == "distance" else None,
        )
        if result.proceed:
            self._status[seq] = self._CLEARED
            if result.predicted:
                # predicted dependence satisfied without waiting: the
                # paper's accounting books this as "no dependence" (Y/N),
                # but the synchronization did its job, so strengthen.
                sim.classify_load(seq, "yn")
                for e in result.matched_entries:
                    self._defer(seq, "reward", (e.store_pc, e.load_pc))
            else:
                sim.classify_load(seq, "nn")
            return True
        self._status[seq] = self._PARKED
        return False

    # -- SpeculationPolicy interface --------------------------------------

    def may_issue_load(self, seq, now):
        sim = self.sim
        status = self._status[seq]
        if status == self._CLEARED:
            return now >= self._wake_time[seq]
        if status == self._NOT_SEEN:
            return self._park_or_clear(seq, now)
        # parked: woken by a store signal?  (the engine freed the entry
        # and the simulator recorded the wake via wake_load)
        if self._wake_time[seq] > 0:
            self._status[seq] = self._CLEARED
            return now >= self._wake_time[seq]
        # fallback: all prior stores executed -> force release
        if sim.all_prior_stores_executed(seq):
            pairs = self.engine.release_load(seq)
            for pair in pairs:
                self._defer(seq, "penalize", pair)
            sim.classify_load(seq, "yn")
            self._status[seq] = self._CLEARED
            return True
        return False

    def deny_hints(self, seq, now):
        # read *after* may_issue_load mutated the load's status
        wake = self._wake_time[seq]
        if wake > 0:
            return [(WAKE_TIME, wake)]
        # parked on the MDST: a store signal arrives through wake_load
        # (which dirties the stage directly); the forced-release
        # fallback fires once every prior store has executed
        return [(WAKE_EXEC_MIN, seq)]

    def wake_load(self, seq, now):
        """A store signalled this parked load: it may run next cycle."""
        self.sim.classify_load(seq, "yy")
        self._defer(seq, "reward_all", seq)
        self._wake_time[seq] = now + 1
        note = getattr(self.sim, "note_load_wake", None)
        if note is not None:  # facade sims in tests lack the scheduler
            note(seq)

    def on_store_issued(self, seq, now):
        """The paper signals when the store is ready to access memory
        (Figure 4 action 5), concurrent with its cache access."""
        sim = self.sim
        entry = sim.trace[seq]
        woken = self.engine.store_request(
            entry.pc, self._instance_of(entry), stid=seq, task_pc=entry.task_pc
        )
        for load_seq in woken:
            self.wake_load(load_seq, now)

    def on_store_executed(self, seq, now):
        # re-announce after a violation so the squashed load finds a
        # pre-set full condition variable when it re-executes
        self.on_store_issued(seq, now)

    def on_violation(self, store_seq, load_seq, now):
        sim = self.sim
        store = sim.trace[store_seq]
        load = sim.trace[load_seq]
        if self.tagging == "distance":
            distance = load.task_id - store.task_id
        else:
            distance = 0  # address tags match directly; no offset needed
        self.engine.record_mis_speculation(
            store.pc,
            load.pc,
            distance=distance,
            store_task_pc=store.task_pc,
        )

    def explain_violation(self, store_seq, load_seq):
        """MDPT/MDST state for the just-recorded violation.

        ``on_violation`` has already run, so the entry (allocated or
        strengthened by :meth:`SynchronizationEngine.record_mis_speculation`)
        reflects the squash-time state the next instance will consult.
        """
        trace = self.sim.trace
        store_pc = trace[store_seq].pc
        load_pc = trace[load_seq].pc
        entry = self.engine.mdpt.get(store_pc, load_pc)
        mdpt_entry = None
        if entry is not None:
            state = entry.state
            predictor = self.engine.mdpt.predictor
            counter = getattr(state, "value", None)
            threshold = getattr(predictor, "threshold", None)
            if counter is not None and threshold is not None:
                # threshold arming, not predict(): path-sensitive
                # predictors need a candidate task PC we no longer have
                armed = counter >= threshold
            elif state is not None:
                armed = bool(predictor.predict(state))
            else:
                armed = None
            mdpt_entry = {
                "distance": entry.distance,
                "counter": counter,
                "predicts_dependence": armed,
            }
        mdst = self.engine.mdst
        return {
            "decision": "speculated",
            "predictor": self.predictor_name,
            "tagging": self.tagging,
            "pair_state": mdpt_entry,
            "mdst_waiting_loads": sum(1 for e in mdst if e.waiting),
        }

    def on_squash(self, first_seq, now):
        sim = self.sim
        first_task = sim.trace[first_seq].task_id
        for task_id, updates in list(self._pending_updates.items()):
            if task_id < first_task:
                continue
            kept = [u for u in updates if u[2] < first_seq]
            if kept:
                self._pending_updates[task_id] = kept
            else:
                del self._pending_updates[task_id]
        for seq in sim.squashed_seqs(first_seq):
            self._status[seq] = self._NOT_SEEN
            self._wake_time[seq] = 0
        self.engine.squash(
            lambda ldid: ldid >= first_seq,
            lambda stid: stid >= first_seq,
        )

    def on_task_dispatched(self, task_id, now):
        if self._telemetry.enabled:
            self._sample_occupancy(now)

    def publish_telemetry(self, telemetry):
        metrics = telemetry.metrics
        mdpt, mdst = self.engine.mdpt, self.engine.mdst
        metrics.gauge("mdpt.capacity").set(mdpt.capacity)
        metrics.gauge("mdpt.entries").set(len(mdpt))
        metrics.gauge("mdpt.allocations").set(mdpt.allocations)
        metrics.gauge("mdpt.evictions").set(mdpt.evictions)
        metrics.gauge("mdst.capacity").set(mdst.capacity)
        metrics.gauge("mdst.entries").set(len(mdst))
        metrics.gauge("mdst.allocations").set(mdst.allocations)
        metrics.gauge("mdst.overflow_drops").set(mdst.overflow_drops)
        metrics.gauge("mdst.failed_allocations").set(mdst.failed_allocations)
        if isinstance(mdst, SlottedMDST):
            metrics.gauge("mdst.slot_replacements").set(mdst.slot_replacements)

    def on_task_committed(self, task_id, now):
        if self._telemetry.enabled:
            self._sample_occupancy(now)
        for kind, payload, _seq in self._pending_updates.pop(task_id, ()):
            if kind == "reward":
                self.engine.reward_pair(*payload)
            elif kind == "penalize":
                self.engine.penalize_pair(*payload)
            elif kind == "reward_all":
                # reward every MDPT entry that predicted this load; the
                # load PC is enough — the signalled pair(s) match it.
                load_pc = self.sim.trace[payload].pc
                for entry in list(self.engine.mdpt.lookup_load(load_pc)):
                    self.engine.reward_pair(entry.store_pc, entry.load_pc)


class StaticPrimedSyncPolicy(MechanismPolicy):
    """SYNC with the MDPT seeded from static MUST-alias proofs.

    Before the first dynamic instruction, the symbolic alias analysis
    (:mod:`repro.staticdep.symbolic`) runs over the traced program;
    every (store, load) pair it *proves* aliasing, with a statically
    inferred dependence distance, is pre-installed in the MDPT via
    :meth:`repro.core.mdpt.MDPT.install`.  Such pairs synchronize from
    their very first dynamic encounter — the plain SYNC policy instead
    pays one cold-start mis-speculation per pair to learn the same
    entry.  Pairs whose static distance reaches beyond the processor
    window are skipped: with fewer stages in flight than the distance
    spans, the producer has always committed before the consumer
    dispatches, so the entry could only cause useless synchronization.
    """

    def __init__(self, predictor="sync", **kwargs):
        super().__init__(predictor=predictor, **kwargs)
        self.primed_pairs = 0
        self.analysis = None

    @property
    def name(self):
        return "PRIMED"

    def bind(self, sim):
        from repro.staticdep.analysis import analyze_program_symbolic

        super().bind(sim)
        self.analysis = None
        program = getattr(sim.trace, "program", None)
        if program is None:
            return  # facade sims without a program: run unprimed
        analysis = analyze_program_symbolic(program)
        self.analysis = analysis
        horizon = sim.config.stages
        maximum = getattr(self.engine.mdpt.predictor, "maximum", None)
        for store_pc, load_pc, distance in analysis.primable():
            if distance < horizon:
                entry = self.engine.mdpt.install(store_pc, load_pc, distance)
                # A proven MUST dependence holds on *every* iteration, so
                # start the counter saturated, not at the allocation value:
                # the loop's first instance has no partner store in flight,
                # and the resulting force-release would otherwise penalize
                # a freshly primed entry straight below threshold.
                if maximum is not None and hasattr(entry.state, "value"):
                    entry.state.value = maximum
        self.primed_pairs = self.engine.mdpt.primed

    def publish_telemetry(self, telemetry):
        super().publish_telemetry(telemetry)
        telemetry.metrics.gauge("mdpt.primed").set(self.primed_pairs)


class SliceWarmedSyncPolicy(StaticPrimedSyncPolicy):
    """PRIMED extended with Prophet-style pre-computation slices.

    Static priming removes cold-start squashes only for pairs the
    symbolic analysis *proves* MUST-alias.  This policy generalizes
    "provable at compile time" to "resolvable at runtime ahead of
    need": for every remaining MAY/MUST pair whose address-generation
    slice is affordable (:func:`repro.staticdep.pdg.extract_predictor_slices`),
    a bounded pre-executor (:class:`repro.frontend.slice_executor.SliceExecutor`)
    replays the union of those slices ahead of the main sequencer.
    Each task dispatch grants it ``slice_budget_per_task`` slice
    instructions; whenever the pre-executed store and load addresses
    collide across tasks within the window horizon, the pair is
    installed into the MDPT with a saturated counter — before the
    first real consumer issues, so even unprovable recurring
    dependences synchronize from their first dynamic encounter.

    At most one producer is ever installed per load (the first the
    pre-execution resolves): a load guarded by entries against several
    conditional producers stalls on stores that may never execute in
    its task, which costs far more than the one cold-start squash a
    second entry could save.

    A slice fault (the pre-executed path trips a runtime error) or
    budget exhaustion simply stops the warming: the policy degrades to
    PRIMED, never corrupting architectural state — the pre-executor
    owns a private register file and memory image.
    """

    def __init__(
        self,
        predictor="sync",
        slice_budget_per_task=32,
        slice_max_length=64,
        slice_max_loads=8,
        **kwargs,
    ):
        super().__init__(predictor=predictor, **kwargs)
        self.slice_budget_per_task = slice_budget_per_task
        self.slice_max_length = slice_max_length
        self.slice_max_loads = slice_max_loads
        self.warmable_pairs = 0
        self.installed_pairs = 0
        self.slice_instructions = 0
        self._runner = None
        self._consumers = {}
        self._unresolved = set()
        self._store_events = {}
        self._horizon = 0
        self._maximum = None

    @property
    def name(self):
        return "SLICEWARM"

    def bind(self, sim):
        from repro.frontend.slice_executor import SliceExecutor
        from repro.staticdep.pdg import (
            WARMABLE,
            SliceBudget,
            build_pdg,
            extract_predictor_slices,
        )

        super().bind(sim)
        self.warmable_pairs = 0
        self.installed_pairs = 0
        self.slice_instructions = 0
        self._runner = None
        self._consumers = {}
        self._unresolved = set()
        self._store_events = {}
        program = getattr(sim.trace, "program", None)
        if program is None or self.analysis is None:
            return  # facade sims without a program: run as plain PRIMED
        pdg = build_pdg(program, analysis=self.analysis)
        budget = SliceBudget(
            max_length=self.slice_max_length, max_loads=self.slice_max_loads
        )
        mdpt = self.engine.mdpt
        slices = [
            s
            for s in extract_predictor_slices(pdg, budget)
            if s.status == WARMABLE and not mdpt.has_entry_for_load(s.load_pc)
        ]
        self.warmable_pairs = len(slices)
        if not slices:
            return
        union = set()
        watch = set()
        for s in slices:
            union |= s.pcs
            watch.add(s.store_pc)
            watch.add(s.load_pc)
            self._unresolved.add(s.pair)
            self._consumers.setdefault(s.load_pc, []).append(s.store_pc)
        self._horizon = sim.config.stages
        self._maximum = getattr(mdpt.predictor, "maximum", None)
        self._runner = SliceExecutor(program, union, watch_pcs=watch)
        # Prophet launches its slices ahead of the sequencer: give the
        # pre-executor one window's worth of head start at spawn time.
        self._advance(self.slice_budget_per_task * self._horizon)

    def _advance(self, budget):
        """Run the pre-executor for *budget* slice instructions and
        resolve store->load collisions into MDPT installs."""
        from repro.frontend.interpreter import InterpreterError

        runner = self._runner
        if runner is None:
            return
        try:
            events = runner.run(budget)
        except InterpreterError:
            # The sliced path faulted (the program would fault too, or
            # the walk limit tripped): stop warming, keep what we have.
            self._runner = None
            return
        delta = runner.executed - self.slice_instructions
        self.slice_instructions = runner.executed
        if self._telemetry.enabled and delta:
            self._telemetry.metrics.counter("slice.pre_exec_instructions").inc(delta)
        mdpt = self.engine.mdpt
        for ev in events:
            consumers = self._consumers.get(ev.pc)
            if consumers is None:
                # store-side watch: remember (task, addr), pruned to the
                # window horizon — older producers cannot synchronize.
                history = self._store_events.setdefault(ev.pc, [])
                history.append((ev.task_id, ev.addr))
                while history and history[0][0] < ev.task_id - self._horizon:
                    history.pop(0)
                continue
            for store_pc in consumers:
                if (store_pc, ev.pc) not in self._unresolved:
                    continue
                if mdpt.has_entry_for_load(ev.pc):
                    # One producer per load: a second entry (learned,
                    # primed, or warmed meanwhile) would make the load
                    # also wait on a store that may never execute in
                    # its task — far costlier than one cold start.
                    self._unresolved.discard((store_pc, ev.pc))
                    continue
                for store_task, store_addr in reversed(
                    self._store_events.get(store_pc, ())
                ):
                    if store_addr != ev.addr or store_task >= ev.task_id:
                        continue
                    distance = ev.task_id - store_task
                    if distance < self._horizon:
                        entry = mdpt.install(store_pc, ev.pc, distance)
                        if self._maximum is not None and hasattr(
                            entry.state, "value"
                        ):
                            entry.state.value = self._maximum
                        self.installed_pairs += 1
                        # retire every sibling candidate of this load
                        for sibling in consumers:
                            self._unresolved.discard((sibling, ev.pc))
                    break
        if not self._unresolved:
            self._runner = None  # every pair resolved: stop pre-executing

    def on_task_dispatched(self, task_id, now):
        super().on_task_dispatched(task_id, now)
        if self._runner is not None:
            self._advance(self.slice_budget_per_task)

    def publish_telemetry(self, telemetry):
        super().publish_telemetry(telemetry)
        metrics = telemetry.metrics
        metrics.gauge("slice.warmable_pairs").set(self.warmable_pairs)
        metrics.gauge("slice.installed_pairs").set(self.installed_pairs)
        metrics.gauge("slice.instructions").set(self.slice_instructions)


class ValueSyncPolicy(MechanismPolicy):
    """VSYNC: value-predict dependence-likely loads (paper Section 6).

    Where the base mechanism parks a predicted-dependent load until its
    store signals, VSYNC first consults a value predictor: a confident
    prediction lets the load execute immediately with the predicted
    value.  When the producing store arrives, the prediction is
    verified against the architecturally-correct value; a mismatch
    squashes the load and everything younger.  Loads without a
    confident value prediction fall back to synchronization.
    """

    def __init__(self, predictor="esync", value_predictor="stride", **kwargs):
        super().__init__(predictor=predictor, **kwargs)
        self.value_predictor_name = value_predictor

    @property
    def name(self):
        return "VSYNC"

    def bind(self, sim):
        from repro.core.value_prediction import make_value_predictor

        super().bind(sim)
        self.values = make_value_predictor(self.value_predictor_name)
        self._value_speculated: Dict[int, object] = {}
        self._verified_ok = set()
        self._trained = set()
        self.value_speculations = 0

    def _park_or_clear(self, seq, now):
        entry = self.sim.trace[seq]
        # the prediction for THIS load must precede its own training
        predicted = self.values.predict(entry.pc)
        if seq not in self._trained:
            # value predictors train speculatively at execute time; one
            # training per dynamic instance, squash or not
            self._trained.add(seq)
            self.values.train(entry.pc, entry.value)
        proceeded = super()._park_or_clear(seq, now)
        if proceeded or self._status[seq] != self._PARKED:
            return proceeded
        if predicted is None:
            return False  # no confidence: stay parked on the MDST
        # drop the condition variables and run with the predicted value
        for cv in self.engine.mdst.entries_for_ldid(seq):
            self.engine.mdst.free(cv)
        self._value_speculated[seq] = predicted
        self.value_speculations += 1
        self._status[seq] = self._CLEARED
        self.sim.classify_load(seq, "yy")
        return True

    def on_store_issued(self, seq, now):
        super().on_store_issued(seq, now)
        sim = self.sim
        for load_seq in sim.dependents.get(seq, ()):
            predicted = self._value_speculated.pop(load_seq, None)
            if predicted is None:
                continue
            if not sim.issued[load_seq]:
                continue
            actual = sim.trace[load_seq].value
            correct = predicted == actual
            self.values.record_outcome(correct)
            if correct:
                self._verified_ok.add(load_seq)
            else:
                sim.squash_for_value_mismatch(load_seq, now)

    def absolves_violation(self, store_seq, load_seq):
        return load_seq in self._verified_ok

    def publish_telemetry(self, telemetry):
        super().publish_telemetry(telemetry)
        telemetry.metrics.gauge("vsync.value_speculations").set(self.value_speculations)

    def on_squash(self, first_seq, now):
        super().on_squash(first_seq, now)
        for seq in list(self._value_speculated):
            if seq >= first_seq:
                del self._value_speculated[seq]
        self._verified_ok = {s for s in self._verified_ok if s < first_seq}

    def on_task_committed(self, task_id, now):
        super().on_task_committed(task_id, now)
        for seq in self.sim.tasks[task_id]:
            self._value_speculated.pop(seq, None)
            self._verified_ok.discard(seq)
            self._trained.discard(seq)


class StoreSetPolicy(SpeculationPolicy):
    """Memory dependence speculation via store sets (Chrysos & Emer,
    ISCA 1998) — the successor mechanism, provided for head-to-head
    comparison with the paper's MDPT/MDST on the same substrate.

    At task dispatch every memory instruction passes the SSIT/LFST in
    program order: stores install themselves, loads record the specific
    in-flight store they must wait for.  A waiting load issues once
    that store has performed; violations merge the pair's store sets.
    """

    name = "STORESET"

    def __init__(self, ssit_size=1024, lfst_size=256):
        self.ssit_size = ssit_size
        self.lfst_size = lfst_size

    def bind(self, sim):
        super().bind(sim)
        from repro.core.store_sets import StoreSetPredictor

        self.predictor = StoreSetPredictor(self.ssit_size, self.lfst_size)
        self._wait_for: Dict[int, int] = {}  # load seq -> store seq

    def on_task_dispatched(self, task_id, now):
        sim = self.sim
        for seq in sim.tasks[task_id]:
            entry = sim.trace[seq]
            if entry.is_store:
                self.predictor.store_fetched(entry.pc, seq)
            elif entry.is_load:
                dep = self.predictor.load_fetched(entry.pc)
                if dep is not None:
                    self._wait_for[seq] = dep

    def may_issue_load(self, seq, now):
        dep = self._wait_for.get(seq)
        if dep is None:
            return True
        sim = self.sim
        if sim.issued[dep] and sim._store_perform[dep] <= now:
            del self._wait_for[seq]
            return True
        if not sim.issued[dep] and sim.all_prior_stores_executed(seq):
            # safety valve mirroring the MDST fallback: the tracked store
            # was squashed away or reordered; never deadlock
            del self._wait_for[seq]
            return True
        return False

    def deny_hints(self, seq, now):
        dep = self._wait_for.get(seq)
        if dep is None:
            return None
        sim = self.sim
        if sim.issued[dep]:
            return [(WAKE_TIME, sim._store_perform[dep])]
        return [(WAKE_ISSUE, dep), (WAKE_EXEC_MIN, seq)]

    def on_store_issued(self, seq, now):
        self.predictor.store_issued(self.sim.trace[seq].pc, seq)

    def on_violation(self, store_seq, load_seq, now):
        trace = self.sim.trace
        self.predictor.on_violation(trace[store_seq].pc, trace[load_seq].pc)

    def on_squash(self, first_seq, now):
        self.predictor.squash(lambda store_id: store_id >= first_seq)
        for load_seq in list(self._wait_for):
            if load_seq >= first_seq:
                del self._wait_for[load_seq]
        # squashed instructions re-fetch through the SSIT/LFST in program
        # order, exactly like their original dispatch
        sim = self.sim
        for seq in sim.squashed_seqs(first_seq):
            entry = sim.trace[seq]
            if entry.is_store:
                self.predictor.store_fetched(entry.pc, seq)
            elif entry.is_load:
                dep = self.predictor.load_fetched(entry.pc)
                if dep is not None and not (
                    sim.issued[dep] and sim._store_perform[dep] <= now
                ):
                    self._wait_for[seq] = dep


#: Canonical policy name -> factory, in the order the CLI and the
#: comparison harness present them (NEVER first: it is the speedup
#: baseline everywhere).
POLICY_FACTORIES = {
    "never": NeverPolicy,
    "always": AlwaysPolicy,
    "wait": WaitPolicy,
    "psync": PerfectSyncPolicy,
    "sync": lambda **kw: MechanismPolicy(predictor="sync", **kw),
    "esync": lambda **kw: MechanismPolicy(predictor="esync", **kw),
    "sync_static_primed": StaticPrimedSyncPolicy,
    "sync_slice_warmed": SliceWarmedSyncPolicy,
    "vsync": ValueSyncPolicy,
    "storeset": StoreSetPolicy,
}

#: Accepted non-canonical spellings (variants kept out of sweeps).
POLICY_ALIASES = {
    "always-sync": lambda **kw: MechanismPolicy(predictor="always", **kw),
}


def available_policies():
    """Canonical policy names, in presentation order.

    The CLI derives its ``--policy`` choices and comparison column set
    from this, so registering a policy here is all it takes to surface
    it everywhere.
    """
    return tuple(POLICY_FACTORIES)


def make_policy(name, **kwargs) -> SpeculationPolicy:
    """Policy factory.

    Accepted names: everything in :func:`available_policies` — "never",
    "always", "wait", "psync", the mechanism predictors "sync" and
    "esync", "sync_static_primed" (SYNC with the MDPT seeded from
    static MUST-alias proofs), "sync_slice_warmed" (PRIMED plus
    Prophet-style pre-executed address slices that install MAY pairs
    resolved ahead of need), "vsync" (the Section 6 hybrid:
    value-predict dependence-likely loads), "storeset" — plus the alias
    "always-sync" (MDPT/MDST with the always-synchronize predictor).
    """
    lowered = name.lower()
    factory = POLICY_FACTORIES.get(lowered) or POLICY_ALIASES.get(lowered)
    if factory is None:
        raise ValueError("unknown policy %r" % (name,))
    return factory(**kwargs)
