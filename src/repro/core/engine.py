"""The synchronization engine: MDPT + MDST protocol of paper Figure 4.

This module drives the two tables through the paper's working example:

* a load about to access memory passes through the MDPT; predicted
  dependences allocate (or consume) condition variables in the MDST and
  possibly park the load (:meth:`SynchronizationEngine.load_request`);
* a store about to access memory passes through the MDPT; matching
  predicted edges signal waiting loads or pre-set full condition
  variables for loads yet to arrive (:meth:`SynchronizationEngine.store_request`);
* a load that becomes safe because every prior store has executed is
  force-released and its useless condition variables freed
  (:meth:`SynchronizationEngine.release_load`);
* a detected mis-speculation allocates/strengthens the MDPT entry
  (:meth:`SynchronizationEngine.record_mis_speculation`).

The engine is timing-free: the Multiscalar simulator supplies time and
decides *when* to call each hook, so the protocol can be unit-tested in
isolation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.core.mdpt import MDPT, MDPTEntry
from repro.core.mdst import MDST
from repro.telemetry.registry import NULL_METRICS


@dataclass
class LoadRequestResult:
    """Outcome of a load's pass through the MDPT/MDST.

    Attributes:
        predicted: at least one MDPT entry predicted a dependence.
        proceed: the load may access memory now.
        waits: condition variables the load is parked on (empty when
            *proceed*).
        satisfied_early: the load proceeded because every predicted edge
            had a pre-existing full condition variable (store already
            executed and signalled ahead — Figure 4 parts (e)/(f)).
        matched_entries: the predicted MDPT entries, for later
            predictor update by the caller.
    """

    predicted: bool = False
    proceed: bool = True
    waits: List[object] = field(default_factory=list)
    satisfied_early: bool = False
    matched_entries: List[MDPTEntry] = field(default_factory=list)


class SynchronizationEngine:
    """Orchestrates one MDPT and one MDST."""

    def __init__(self, mdpt: MDPT, mdst: MDST, metrics=None):
        self.mdpt = mdpt
        self.mdst = mdst
        # counters for diagnostics
        self.loads_parked = 0
        self.loads_satisfied_early = 0
        self.signals_delivered = 0
        self.fallback_releases = 0
        # optional metric publication (repro.telemetry); the null sink
        # discards everything at no observable cost
        metrics = metrics if metrics is not None else NULL_METRICS
        self._m_parked = metrics.counter("engine.loads_parked")
        self._m_early = metrics.counter("engine.loads_satisfied_early")
        self._m_signals = metrics.counter("engine.signals_delivered")
        self._m_releases = metrics.counter("engine.fallback_releases")
        self._m_presets = metrics.counter("engine.signals_preset")

    # ------------------------------------------------------------------
    # load side (Figure 4 actions 2-4)
    # ------------------------------------------------------------------

    def load_request(
        self,
        load_pc,
        instance,
        ldid,
        task_pc_of: Optional[Callable[[int], Optional[int]]] = None,
    ) -> LoadRequestResult:
        """A load is ready to access memory: consult the tables.

        *instance* is the load's instance number (its task sequence
        number in the Multiscalar approximation).  *task_pc_of* maps an
        instance number to the PC of the task occupying that position,
        which path-sensitive (ESYNC) predictors consult.
        """
        result = LoadRequestResult()
        for entry in self.mdpt.lookup_load(load_pc):
            candidate_pc = None
            if task_pc_of is not None:
                candidate_pc = task_pc_of(instance - entry.distance)
            if not self.mdpt.predict(entry, candidate_pc):
                continue
            result.predicted = True
            result.matched_entries.append(entry)
            sync = self.mdst.find(entry.store_pc, load_pc, instance)
            if sync is not None and sync.full:
                # store already executed and signalled ahead: consume.
                self.mdst.free(sync)
                continue
            if sync is None:
                sync = self.mdst.allocate(
                    load_pc, entry.store_pc, instance, ldid=ldid
                )
                if sync is None:
                    continue  # MDST exhausted by waiting loads: no sync
            sync.ldid = ldid
            result.waits.append(sync)
        if result.waits:
            result.proceed = False
            self.loads_parked += 1
            self._m_parked.inc()
        elif result.predicted:
            result.satisfied_early = True
            self.loads_satisfied_early += 1
            self._m_early.inc()
        return result

    # ------------------------------------------------------------------
    # store side (Figure 4 actions 5-8)
    # ------------------------------------------------------------------

    def store_request(self, store_pc, instance, stid=None, task_pc=None) -> List[object]:
        """A store is ready to access memory: signal or pre-set.

        Returns the LDIDs of loads that are now free to execute (loads
        parked on several condition variables wake only when the last
        one is signalled — Section 4.4.4).
        """
        woken = []
        for entry in self.mdpt.lookup_store(store_pc):
            if not self.mdpt.predict(entry, task_pc):
                continue
            target = instance + entry.distance
            sync = self.mdst.find(store_pc, entry.load_pc, target)
            if sync is not None:
                ldid = self.mdst.signal(sync, stid)
                if ldid is not None:
                    self.mdst.free(sync)
                    self.signals_delivered += 1
                    self._m_signals.inc()
                    if not any(
                        e.waiting for e in self.mdst.entries_for_ldid(ldid)
                    ):
                        woken.append(ldid)
                # else: the entry stays full for a load yet to arrive
            else:
                self.mdst.allocate(
                    entry.load_pc, store_pc, target, stid=stid, full=True
                )
                self._m_presets.inc()
        return woken

    # ------------------------------------------------------------------
    # fallback and recovery
    # ------------------------------------------------------------------

    def release_load(self, ldid) -> List[Tuple[int, int]]:
        """Force-release a waiting load (all prior stores executed).

        Frees the load's condition variables and returns the (store PC,
        load PC) pairs it was parked on, so the caller can account the
        false dependence predictions and weaken the predictor
        (Section 4.4.2).
        """
        pairs = []
        for entry in self.mdst.entries_for_ldid(ldid):
            if entry.waiting:
                pairs.append((entry.store_pc, entry.load_pc))
                self.mdst.free(entry)
        if pairs:
            self.fallback_releases += 1
            self._m_releases.inc()
        return pairs

    def record_mis_speculation(
        self, store_pc, load_pc, distance, store_task_pc=None
    ) -> MDPTEntry:
        """A mis-speculation was detected: learn the pair (Figure 4 action 1)."""
        return self.mdpt.record_mis_speculation(
            store_pc, load_pc, distance, store_task_pc
        )

    def squash(self, is_squashed_ldid, is_squashed_stid=None):
        """Invalidate condition variables of squashed instructions."""
        self.mdst.invalidate_squashed(is_squashed_ldid, is_squashed_stid)

    # ------------------------------------------------------------------
    # predictor update helpers (applied non-speculatively by the caller)
    # ------------------------------------------------------------------

    def reward_pair(self, store_pc, load_pc):
        """Strengthen the predictor of a pair whose synchronization paid off."""
        entry = self.mdpt.get(store_pc, load_pc)
        if entry is not None:
            self.mdpt.predictor.on_successful_sync(entry.state)

    def penalize_pair(self, store_pc, load_pc):
        """Weaken the predictor of a pair that synchronized for nothing."""
        entry = self.mdpt.get(store_pc, load_pc)
        if entry is not None:
            self.mdpt.predictor.on_false_prediction(entry.state)
