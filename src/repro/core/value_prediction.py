"""Value prediction for dependence-likely loads (paper Section 6).

The paper suggests combining the two forms of data speculation: "a data
speculation approach that uses value prediction only when dependences
are likely to exist".  A load that the MDPT predicts dependent has two
options beyond waiting for the signal:

* wait (the MDST synchronization of the main mechanism), or
* **predict its value** and execute immediately; verify when the
  producing store arrives and squash only on a value mismatch.

This module provides the value predictors.  They are deliberately the
classic designs of the era (Lipasti & Shen's last-value prediction,
plus a stride variant), keyed by load PC.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple


class LastValuePredictor:
    """Predicts that a static load repeats its last value.

    Confidence is a small saturating counter per entry; predictions are
    offered only at or above the threshold.
    """

    name = "last-value"

    def __init__(self, capacity=256, bits=2, threshold=2):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.maximum = (1 << bits) - 1
        if not 0 < threshold <= self.maximum:
            raise ValueError("threshold out of range")
        self.threshold = threshold
        self._table: Dict[int, list] = {}  # pc -> [value, confidence]
        self.hits = 0
        self.misses = 0

    def __len__(self):
        return len(self._table)

    def predict(self, pc) -> Optional[object]:
        """The predicted value, or None when not confident."""
        entry = self._table.get(pc)
        if entry is None or entry[1] < self.threshold:
            return None
        return entry[0]

    def train(self, pc, actual):
        """Record the actual loaded value; adjust confidence."""
        entry = self._table.get(pc)
        if entry is None:
            if len(self._table) >= self.capacity:
                self._table.pop(next(iter(self._table)))
            self._table[pc] = [actual, 1]
            return
        if entry[0] == actual:
            entry[1] = min(self.maximum, entry[1] + 1)
        else:
            entry[0] = actual
            entry[1] = 0

    def record_outcome(self, correct):
        if correct:
            self.hits += 1
        else:
            self.misses += 1

    @property
    def accuracy(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class StridePredictor(LastValuePredictor):
    """Last value plus stride: predicts ``last + stride``.

    Captures induction-like value sequences (counters incremented
    through memory) that defeat plain last-value prediction.
    """

    name = "stride"

    def __init__(self, capacity=256, bits=2, threshold=2):
        super().__init__(capacity, bits, threshold)
        self._strides: Dict[int, Tuple[object, object]] = {}  # pc -> (last, stride)

    def predict(self, pc) -> Optional[object]:
        entry = self._table.get(pc)
        if entry is None or entry[1] < self.threshold:
            return None
        last, stride = self._strides.get(pc, (entry[0], 0))
        try:
            return last + stride
        except TypeError:
            return last

    def train(self, pc, actual):
        prev = self._strides.get(pc)
        if prev is None:
            self._strides[pc] = (actual, 0)
            if len(self._table) >= self.capacity and pc not in self._table:
                evicted = next(iter(self._table))
                self._table.pop(evicted)
                self._strides.pop(evicted, None)
            self._table[pc] = [actual, 0]
            return
        last, stride = prev
        try:
            new_stride = actual - last
        except TypeError:
            new_stride = 0
        entry = self._table.setdefault(pc, [actual, 0])
        predicted = None
        try:
            predicted = last + stride
        except TypeError:
            pass
        if predicted == actual:
            entry[1] = min(self.maximum, entry[1] + 1)
        else:
            entry[1] = max(0, entry[1] - 1)
        entry[0] = actual
        self._strides[pc] = (actual, new_stride)


def make_value_predictor(name, **kwargs):
    table = {"last-value": LastValuePredictor, "stride": StridePredictor}
    try:
        cls = table[name]
    except KeyError:
        raise ValueError(
            "unknown value predictor %r (expected one of %s)"
            % (name, sorted(table))
        ) from None
    return cls(**kwargs)
