"""Memory Dependence Synchronization Table (MDST) — paper Section 4.2.

An MDST entry supplies a condition variable (the full/empty flag) and
the bookkeeping needed to synchronize one dynamic instance of a static
store/load pair.  Fields per the paper: valid flag, load PC, store PC,
load identifier (LDID), store identifier (STID), instance tag, and the
full/empty flag.

Instance tags here are the load-side instance numbers (approximated by
task sequence numbers, as the paper approximates them with statically
assigned stage identifiers).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class MDSTEntry:
    """One synchronization entry (a dynamic condition variable)."""

    __slots__ = ("valid", "load_pc", "store_pc", "instance", "ldid", "stid", "full")

    def __init__(self, load_pc, store_pc, instance, ldid=None, stid=None, full=False):
        self.valid = True
        self.load_pc = load_pc
        self.store_pc = store_pc
        self.instance = instance
        self.ldid = ldid
        self.stid = stid
        self.full = full

    @property
    def key(self) -> Tuple[int, int, int]:
        return (self.store_pc, self.load_pc, self.instance)

    @property
    def waiting(self) -> bool:
        """True when a load is parked on this condition variable."""
        return self.ldid is not None and not self.full

    def __repr__(self):
        return "MDSTEntry(store_pc=%d, load_pc=%d, inst=%d, full=%s, ldid=%r)" % (
            self.store_pc,
            self.load_pc,
            self.instance,
            self.full,
            self.ldid,
        )


class MDST:
    """The pool of condition variables.

    Allocation policy on overflow (paper Section 4.4.2): free an entry
    whose full/empty flag is set to full — those synchronizations
    already happened on the store side and losing one only costs a
    fallback release.  If every entry has a waiting load, allocation
    fails and the requesting load simply is not synchronized.
    """

    def __init__(self, capacity):
        if capacity <= 0:
            raise ValueError("MDST capacity must be positive")
        self.capacity = capacity
        self._by_key: Dict[Tuple[int, int, int], MDSTEntry] = {}
        self.allocations = 0
        self.overflow_drops = 0
        self.failed_allocations = 0

    def __len__(self):
        return len(self._by_key)

    def __iter__(self):
        return iter(self._by_key.values())

    def allocate(
        self, load_pc, store_pc, instance, ldid=None, stid=None, full=False
    ) -> Optional[MDSTEntry]:
        """Allocate a condition variable; return None when no room."""
        key = (store_pc, load_pc, instance)
        existing = self._by_key.get(key)
        if existing is not None:
            return existing
        if len(self._by_key) >= self.capacity:
            victim = next((e for e in self._by_key.values() if e.full), None)
            if victim is None:
                self.failed_allocations += 1
                return None
            self.free(victim)
            self.overflow_drops += 1
        entry = MDSTEntry(load_pc, store_pc, instance, ldid=ldid, stid=stid, full=full)
        self._by_key[key] = entry
        self.allocations += 1
        return entry

    def find(self, store_pc, load_pc, instance) -> Optional[MDSTEntry]:
        """The associative search of paper Figure 4 (actions 5-6)."""
        return self._by_key.get((store_pc, load_pc, instance))

    def entries_for_ldid(self, ldid) -> List[MDSTEntry]:
        """All entries tagged with one load identifier (second associative
        lookup of Section 4.4.4, used to decide whether a signalled load
        still has other dependences to wait on)."""
        return [e for e in self._by_key.values() if e.ldid == ldid]

    def signal(self, entry, stid=None) -> Optional[object]:
        """Store-side signal: set full; return the waiting LDID, if any."""
        if not entry.valid:
            raise ValueError("signalling an invalid MDST entry")
        entry.stid = stid
        was_waiting = entry.waiting
        entry.full = True
        return entry.ldid if was_waiting else None

    def free(self, entry):
        """Release a condition variable."""
        if entry.valid:
            entry.valid = False
            del self._by_key[entry.key]

    def invalidate_squashed(self, is_squashed_ldid, is_squashed_stid=None):
        """Drop entries belonging to squashed instructions (Section 4.4.3).

        *is_squashed_ldid* / *is_squashed_stid* are predicates over the
        recorded identifiers.  Entries whose waiting load was squashed
        are freed outright; full entries produced by squashed stores are
        freed as well.
        """
        for entry in list(self._by_key.values()):
            if entry.ldid is not None and is_squashed_ldid(entry.ldid):
                self.free(entry)
            elif (
                is_squashed_stid is not None
                and entry.stid is not None
                and entry.full
                and is_squashed_stid(entry.stid)
            ):
                self.free(entry)
