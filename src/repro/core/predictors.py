"""Dependence predictors for MDPT entries (paper Sections 4.4.1 and 5.5).

Three predictors are provided:

* :class:`AlwaysSyncPredictor` — the "optional field omitted" baseline:
  any matching MDPT entry predicts synchronization.
* :class:`CounterPredictor` — the paper's **SYNC** predictor: a 3-bit
  up/down saturating counter per entry with threshold 3.  Values below
  the threshold predict no dependence; values at or above it predict
  dependence and consequent synchronization.
* :class:`PathSensitivePredictor` — the paper's **ESYNC** predictor:
  the counter plus the PC of the task that issued the store.
  Synchronization is enforced only if the task at distance DIST from
  the load is executing a task with that PC, which captures loads whose
  multiple static dependences occur via different execution paths.
"""

from __future__ import annotations


class CounterState:
    """Per-entry predictor state: a saturating counter and optional path PC."""

    __slots__ = ("value", "store_task_pc")

    def __init__(self, value, store_task_pc=None):
        self.value = value
        self.store_task_pc = store_task_pc

    def __repr__(self):
        return "CounterState(value=%d, store_task_pc=%r)" % (
            self.value,
            self.store_task_pc,
        )


class DependencePredictor:
    """Interface shared by all dependence predictors.

    The prediction method ought to strengthen when synchronization pays
    off and weaken when it does not (paper Section 4.4.1); the three
    ``on_*`` hooks below receive exactly those outcomes from the
    synchronization engine.
    """

    name = "abstract"

    def make_state(self) -> CounterState:
        """Fresh per-entry state, created when a mis-speculation allocates
        an MDPT entry (so it must start out predicting dependence)."""
        raise NotImplementedError

    def predict(self, state, candidate_task_pc=None) -> bool:
        """Should a load matching this entry synchronize?

        *candidate_task_pc* is the PC of the task at distance DIST from
        the load (used only by path-sensitive predictors).
        """
        raise NotImplementedError

    def on_mis_speculation(self, state, store_task_pc=None):
        """The pair mis-speculated (again): strengthen."""
        raise NotImplementedError

    def on_successful_sync(self, state):
        """A store signalled a waiting load: the prediction was useful."""
        raise NotImplementedError

    def on_false_prediction(self, state):
        """The load synchronized for nothing: weaken."""
        raise NotImplementedError


class AlwaysSyncPredictor(DependencePredictor):
    """Predict synchronization for every valid MDPT entry."""

    name = "always"

    def make_state(self):
        return CounterState(value=1)

    def predict(self, state, candidate_task_pc=None):
        return True

    def on_mis_speculation(self, state, store_task_pc=None):
        pass

    def on_successful_sync(self, state):
        pass

    def on_false_prediction(self, state):
        pass


class CounterPredictor(DependencePredictor):
    """The SYNC predictor: an up/down saturating counter per entry.

    The paper's configuration is a 3-bit counter (0..7) with threshold
    3; entries are allocated on a mis-speculation, so the initial value
    must be at or above the threshold.
    """

    name = "sync"

    def __init__(self, bits=3, threshold=3, initial=None):
        if bits < 1:
            raise ValueError("counter must have at least one bit")
        self.maximum = (1 << bits) - 1
        if not 0 < threshold <= self.maximum:
            raise ValueError(
                "threshold %d out of range for a %d-bit counter" % (threshold, bits)
            )
        self.threshold = threshold
        self.initial = threshold if initial is None else initial
        if not 0 <= self.initial <= self.maximum:
            raise ValueError("initial value %d out of range" % self.initial)

    def make_state(self):
        return CounterState(value=self.initial)

    def predict(self, state, candidate_task_pc=None):
        return state.value >= self.threshold

    def on_mis_speculation(self, state, store_task_pc=None):
        state.value = min(self.maximum, state.value + 1)

    def on_successful_sync(self, state):
        state.value = min(self.maximum, state.value + 1)

    def on_false_prediction(self, state):
        state.value = max(0, state.value - 1)


class PathSensitivePredictor(CounterPredictor):
    """The ESYNC predictor: counter plus the producing task's PC.

    Synchronization is enforced on a matching load only if the task at
    distance DIST runs the task whose PC was recorded when the store
    side of the dependence last mis-speculated.  When the candidate
    task PC is unknown (the task already retired or has not been
    dispatched), no synchronization is enforced — the counter alone
    cannot vouch for the path.
    """

    name = "esync"

    def make_state(self):
        return CounterState(value=self.initial, store_task_pc=None)

    def predict(self, state, candidate_task_pc=None):
        if state.value < self.threshold:
            return False
        if state.store_task_pc is None:
            return True  # no path information recorded yet
        return candidate_task_pc == state.store_task_pc

    def on_mis_speculation(self, state, store_task_pc=None):
        super().on_mis_speculation(state, store_task_pc)
        if store_task_pc is not None:
            state.store_task_pc = store_task_pc


def make_predictor(name, **kwargs) -> DependencePredictor:
    """Factory keyed by predictor name ("always", "sync", "esync")."""
    table = {
        "always": AlwaysSyncPredictor,
        "sync": CounterPredictor,
        "esync": PathSensitivePredictor,
    }
    try:
        cls = table[name]
    except KeyError:
        raise ValueError(
            "unknown predictor %r (expected one of %s)" % (name, sorted(table))
        ) from None
    return cls(**kwargs)
