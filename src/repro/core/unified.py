"""The combined MDPT/MDST structure evaluated in the paper (Section 5.5).

The paper's simulated implementation merges both tables: each MDPT
entry carries as many synchronization entries as there are stages, so

* a prediction entry and its condition variables are physically
  adjacent (multiple-dependence allocation is trivial),
* only a single synchronization entry exists per static dependence and
  per stage.

This module models that organization as an MDST subclass that enforces
the per-(pair, stage-slot) uniqueness constraint: an allocation that
collides with a different instance in the same slot *replaces* the
older condition variable (the de-allocation option of Section 4.4.4).
A helper constructor builds the whole unified structure.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.engine import SynchronizationEngine
from repro.core.mdpt import MDPT
from repro.core.mdst import MDST, MDSTEntry
from repro.core.predictors import make_predictor


class SlottedMDST(MDST):
    """MDST with one condition variable per static pair per stage slot."""

    def __init__(self, capacity, slots_per_pair):
        super().__init__(capacity)
        if slots_per_pair <= 0:
            raise ValueError("slots_per_pair must be positive")
        self.slots_per_pair = slots_per_pair
        self._slot_owner: Dict[Tuple[int, int, int], MDSTEntry] = {}
        self.slot_replacements = 0

    def _slot_key(self, store_pc, load_pc, instance):
        return (store_pc, load_pc, instance % self.slots_per_pair)

    def allocate(
        self, load_pc, store_pc, instance, ldid=None, stid=None, full=False
    ) -> Optional[MDSTEntry]:
        slot = self._slot_key(store_pc, load_pc, instance)
        owner = self._slot_owner.get(slot)
        if owner is not None and owner.valid:
            if owner.instance == instance:
                return owner
            if owner.waiting:
                # A load is parked on the slot: the newcomer stalls and
                # retries (paper Section 4.4.4) — modelled as a failed
                # allocation, so the requester simply is not synchronized.
                self.failed_allocations += 1
                return None
            # a stale full entry holds the slot: replace it
            self.free(owner)
            self.slot_replacements += 1
        entry = super().allocate(
            load_pc, store_pc, instance, ldid=ldid, stid=stid, full=full
        )
        if entry is not None:
            self._slot_owner[slot] = entry
        return entry

    def free(self, entry):
        if entry.valid:
            slot = self._slot_key(entry.store_pc, entry.load_pc, entry.instance)
            if self._slot_owner.get(slot) is entry:
                del self._slot_owner[slot]
        super().free(entry)


def make_unified_engine(
    capacity=64, stages=8, predictor="sync", **predictor_kwargs
) -> SynchronizationEngine:
    """Build the paper's evaluated configuration.

    *capacity* MDPT entries, each carrying *stages* synchronization
    slots (so the MDST holds up to ``capacity * stages`` condition
    variables, one per static dependence and stage).  *predictor* is a
    name accepted by :func:`repro.core.predictors.make_predictor`
    ("always", "sync", or "esync").
    """
    pred = make_predictor(predictor, **predictor_kwargs)
    mdpt = MDPT(capacity, pred)
    mdst = SlottedMDST(capacity * stages, slots_per_pair=stages)
    return SynchronizationEngine(mdpt, mdst)
