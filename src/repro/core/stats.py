"""Speculation accounting: the paper's Table 8 and Table 9 statistics."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PredictionBreakdown:
    """Dependence-prediction outcomes (paper Table 8).

    A dependence prediction is classified by predicted ("Y"/"N") versus
    actual outcome.  Following the paper's accounting: predictions are
    recorded once per dynamic load when it is ready to access memory;
    for loads on which a dependence is predicted, the outcome is
    recorded after checking the synchronization entries — a load that
    proceeds through a pre-existing full condition variable, or that is
    force-released without ever being signalled, counts as "no
    dependence" (the ``yn`` bucket), while a load that waits and is
    signalled by a store counts as "dependence" (``yy``).  Unpredicted
    loads count ``ny`` when they mis-speculate and ``nn`` otherwise.
    """

    nn: int = 0  # predicted no dependence, none materialized
    ny: int = 0  # predicted no dependence, mis-speculated
    yn: int = 0  # predicted dependence, none materialized (false prediction)
    yy: int = 0  # predicted dependence, store signalled the load

    @property
    def total(self) -> int:
        return self.nn + self.ny + self.yn + self.yy

    def rate(self, bucket) -> float:
        """Fraction of all predictions landing in *bucket* ('nn'...'yy')."""
        total = self.total
        if bucket not in ("nn", "ny", "yn", "yy"):
            raise ValueError("unknown bucket %r" % (bucket,))
        return getattr(self, bucket) / total if total else 0.0

    def percentages(self) -> dict:
        """The four buckets as percentages (Table 8 rows)."""
        return {b: 100.0 * self.rate(b) for b in ("nn", "ny", "yn", "yy")}

    def merge(self, other) -> "PredictionBreakdown":
        return PredictionBreakdown(
            nn=self.nn + other.nn,
            ny=self.ny + other.ny,
            yn=self.yn + other.yn,
            yy=self.yy + other.yy,
        )


@dataclass
class SpeculationStats:
    """Aggregate run statistics reported by the Multiscalar simulator."""

    cycles: int = 0
    committed_instructions: int = 0
    committed_loads: int = 0
    committed_stores: int = 0
    mis_speculations: int = 0
    register_mis_speculations: int = 0
    value_mis_speculations: int = 0
    squashed_instructions: int = 0
    tasks_committed: int = 0
    control_mispredictions: int = 0
    breakdown: PredictionBreakdown = field(default_factory=PredictionBreakdown)

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        return self.committed_instructions / self.cycles if self.cycles else 0.0

    @property
    def mis_speculations_per_committed_load(self) -> float:
        """The paper's Table 9 metric."""
        if not self.committed_loads:
            return 0.0
        return self.mis_speculations / self.committed_loads

    def summary(self) -> dict:
        """Every accounted field, in a JSON-ready dict.

        Completeness is load-bearing: ``repro simulate --json`` emits
        exactly this, and the telemetry A/B test compares it between
        instrumented and uninstrumented runs.
        """
        return {
            "cycles": self.cycles,
            "instructions": self.committed_instructions,
            "ipc": round(self.ipc, 4),
            "loads": self.committed_loads,
            "stores": self.committed_stores,
            "tasks_committed": self.tasks_committed,
            "mis_speculations": self.mis_speculations,
            "register_mis_speculations": self.register_mis_speculations,
            "value_mis_speculations": self.value_mis_speculations,
            "missspec_per_load": round(self.mis_speculations_per_committed_load, 6),
            "squashed_instructions": self.squashed_instructions,
            "control_mispredictions": self.control_mispredictions,
            "breakdown": {
                "nn": self.breakdown.nn,
                "ny": self.breakdown.ny,
                "yn": self.breakdown.yn,
                "yy": self.breakdown.yy,
            },
        }


def speedup(base_stats, other_stats) -> float:
    """Percent speedup of *other* relative to *base* (paper Figures 5-7).

    Positive when *other* finishes the same work in fewer cycles.
    """
    if other_stats.cycles == 0:
        raise ValueError("cannot compute speedup of a zero-cycle run")
    return 100.0 * (base_stats.cycles / other_stats.cycles - 1.0)
