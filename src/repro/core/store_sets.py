"""Store-set memory dependence prediction (Chrysos & Emer, ISCA 1998).

The direct successor of this paper's MDPT/MDST: instead of predicting
per (store PC, load PC) pair with an explicit distance tag, loads and
stores that ever conflict are merged into *store sets*:

* the **SSIT** (Store Set Identifier Table) maps an instruction PC to
  its store-set identifier (SSID);
* the **LFST** (Last Fetched Store Table) maps an SSID to the most
  recently fetched, still-in-flight store of that set.

A fetched load looks up its SSID and, if the LFST holds a store,
becomes dependent on exactly that store.  A fetched store does the
same (enforcing store ordering within a set) and then installs itself
in the LFST; when it issues, it clears its LFST entry if still
present.  On a memory-order violation the offending load and store are
merged into one set (smaller SSID wins, per the paper's merge rule).

Implemented here so the benchmark harness can compare the 1997
mechanism against its 1998 successor on identical hardware.
"""

from __future__ import annotations

from typing import Dict, Optional


class StoreSetPredictor:
    """SSIT + LFST with the store-set assignment/merge rules."""

    def __init__(self, ssit_size=1024, lfst_size=256):
        if ssit_size <= 0 or lfst_size <= 0:
            raise ValueError("table sizes must be positive")
        self.ssit_size = ssit_size
        self.lfst_size = lfst_size
        self._ssit: Dict[int, int] = {}       # pc (hashed) -> ssid
        self._lfst: Dict[int, object] = {}    # ssid -> in-flight store id
        self._next_ssid = 0
        self.merges = 0
        self.assignments = 0

    # -- indexing ----------------------------------------------------------

    def _index(self, pc) -> int:
        return pc % self.ssit_size

    def ssid_of(self, pc) -> Optional[int]:
        return self._ssit.get(self._index(pc))

    def _alloc_ssid(self) -> int:
        ssid = self._next_ssid % self.lfst_size
        self._next_ssid += 1
        return ssid

    # -- learning ------------------------------------------------------------

    def on_violation(self, store_pc, load_pc):
        """Merge the offending pair into one store set."""
        s_idx, l_idx = self._index(store_pc), self._index(load_pc)
        s_ssid, l_ssid = self._ssit.get(s_idx), self._ssit.get(l_idx)
        if s_ssid is None and l_ssid is None:
            ssid = self._alloc_ssid()
            self._ssit[s_idx] = self._ssit[l_idx] = ssid
            self.assignments += 1
        elif s_ssid is None:
            self._ssit[s_idx] = l_ssid
            self.assignments += 1
        elif l_ssid is None:
            self._ssit[l_idx] = s_ssid
            self.assignments += 1
        elif s_ssid != l_ssid:
            winner = min(s_ssid, l_ssid)
            self._ssit[s_idx] = self._ssit[l_idx] = winner
            self.merges += 1

    # -- fetch/issue protocol ---------------------------------------------------

    def store_fetched(self, store_pc, store_id) -> Optional[object]:
        """A store enters the window: returns the store it must follow
        (intra-set store ordering), then installs itself in the LFST."""
        ssid = self.ssid_of(store_pc)
        if ssid is None:
            return None
        predecessor = self._lfst.get(ssid)
        self._lfst[ssid] = store_id
        return predecessor

    def load_fetched(self, load_pc) -> Optional[object]:
        """A load enters the window: returns the store it depends on."""
        ssid = self.ssid_of(load_pc)
        if ssid is None:
            return None
        return self._lfst.get(ssid)

    def store_issued(self, store_pc, store_id):
        """A store left the window: clear its LFST entry if still its own."""
        ssid = self.ssid_of(store_pc)
        if ssid is not None and self._lfst.get(ssid) == store_id:
            del self._lfst[ssid]

    def squash(self, is_squashed_store_id):
        """Remove squashed in-flight stores from the LFST."""
        for ssid, store_id in list(self._lfst.items()):
            if is_squashed_store_id(store_id):
                del self._lfst[ssid]

    # -- inspection ----------------------------------------------------------------

    def __len__(self):
        return len(self._ssit)
