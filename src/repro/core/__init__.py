"""The paper's contribution: memory dependence prediction + synchronization."""

from repro.core.distributed import DistributedSynchronization
from repro.core.engine import LoadRequestResult, SynchronizationEngine
from repro.core.mdpt import MDPT, MDPTEntry
from repro.core.mdst import MDST, MDSTEntry
from repro.core.predictors import (
    AlwaysSyncPredictor,
    CounterPredictor,
    CounterState,
    DependencePredictor,
    PathSensitivePredictor,
    make_predictor,
)
from repro.core.stats import PredictionBreakdown, SpeculationStats, speedup
from repro.core.store_sets import StoreSetPredictor
from repro.core.unified import SlottedMDST, make_unified_engine
from repro.core.value_prediction import (
    LastValuePredictor,
    StridePredictor,
    make_value_predictor,
)

__all__ = [
    "AlwaysSyncPredictor",
    "DistributedSynchronization",
    "CounterPredictor",
    "CounterState",
    "DependencePredictor",
    "LastValuePredictor",
    "LoadRequestResult",
    "MDPT",
    "MDPTEntry",
    "MDST",
    "MDSTEntry",
    "PathSensitivePredictor",
    "PredictionBreakdown",
    "SlottedMDST",
    "SpeculationStats",
    "StoreSetPredictor",
    "StridePredictor",
    "make_value_predictor",
    "SynchronizationEngine",
    "make_predictor",
    "make_unified_engine",
    "speedup",
]
