"""Distributed MDPT/MDST organization (paper Section 4.4.5).

As issue width grows, centralized tables become a bandwidth bottleneck.
The paper's alternative distributes the structures: identical copies of
the MDPT and the MDST at each source of memory accesses (each
processing unit), operated as follows:

* a **load** uses only its local copy;
* a detected **mis-speculation is broadcast** to all MDPT copies, which
  allocate in lockstep;
* a **store** that matches its local MDPT broadcasts the identifying
  information to every MDST copy, each of which searches for an
  allocated synchronization entry;
* **prediction updates are broadcast** so all MDPT copies stay
  coherent.

This module implements that organization over the same
:class:`~repro.core.engine.SynchronizationEngine` protocol and counts
the broadcast traffic, so the centralized/distributed trade-off can be
measured.  Because every broadcast applies the same deterministic
operation to every copy, the copies stay structurally identical for
MDPT content; MDST content differs per copy only in which waiting loads
are parked locally.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.engine import LoadRequestResult, SynchronizationEngine
from repro.core.mdpt import MDPT
from repro.core.predictors import make_predictor
from repro.core.unified import SlottedMDST


class DistributedSynchronization:
    """*stages* engine copies plus broadcast bookkeeping.

    The interface mirrors :class:`SynchronizationEngine`, with an extra
    leading ``stage`` argument selecting the local copy for the
    load/store side.
    """

    def __init__(self, stages, capacity=64, predictor="sync", **predictor_kwargs):
        if stages <= 0:
            raise ValueError("need at least one stage")
        self.stages = stages
        self.copies: List[SynchronizationEngine] = []
        for _ in range(stages):
            pred = make_predictor(predictor, **predictor_kwargs)
            mdpt = MDPT(capacity, pred)
            mdst = SlottedMDST(capacity * stages, slots_per_pair=stages)
            self.copies.append(SynchronizationEngine(mdpt, mdst))
        self.broadcasts = 0
        self.local_lookups = 0

    def _local(self, stage) -> SynchronizationEngine:
        return self.copies[stage % self.stages]

    # ------------------------------------------------------------------
    # protocol operations
    # ------------------------------------------------------------------

    def load_request(
        self,
        stage,
        load_pc,
        instance,
        ldid,
        task_pc_of: Optional[Callable[[int], Optional[int]]] = None,
    ) -> LoadRequestResult:
        """Loads consult only the local copy (no broadcast)."""
        self.local_lookups += 1
        return self._local(stage).load_request(load_pc, instance, ldid, task_pc_of)

    def store_request(self, stage, store_pc, instance, stid=None, task_pc=None):
        """A store checks its local MDPT; on a match the identifying
        information is broadcast and every MDST copy is searched."""
        self.local_lookups += 1
        local = self._local(stage)
        if not local.mdpt.lookup_store(store_pc):
            return []
        self.broadcasts += 1
        woken = []
        seen = set()
        for copy in self.copies:
            for ldid in copy.store_request(store_pc, instance, stid, task_pc):
                if ldid not in seen:
                    seen.add(ldid)
                    woken.append(ldid)
        return woken

    def record_mis_speculation(self, store_pc, load_pc, distance, store_task_pc=None):
        """Mis-speculations are broadcast to all MDPT copies."""
        self.broadcasts += 1
        entries = [
            copy.record_mis_speculation(store_pc, load_pc, distance, store_task_pc)
            for copy in self.copies
        ]
        return entries[0]

    def release_load(self, stage, ldid):
        """Fallback release is local: the load's entries live in its copy."""
        return self._local(stage).release_load(ldid)

    def squash(self, is_squashed_ldid, is_squashed_stid=None):
        for copy in self.copies:
            copy.squash(is_squashed_ldid, is_squashed_stid)

    def reward_pair(self, store_pc, load_pc):
        """Prediction updates are broadcast to keep copies coherent."""
        self.broadcasts += 1
        for copy in self.copies:
            copy.reward_pair(store_pc, load_pc)

    def penalize_pair(self, store_pc, load_pc):
        self.broadcasts += 1
        for copy in self.copies:
            copy.penalize_pair(store_pc, load_pc)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def mdpt_entry_counts(self) -> List[int]:
        return [len(copy.mdpt) for copy in self.copies]

    def copies_coherent(self) -> bool:
        """True when every MDPT copy holds the same pairs with the same
        DIST and counter state — the invariant the broadcast protocol
        maintains."""
        def snapshot(copy):
            return sorted(
                (e.store_pc, e.load_pc, e.distance, e.state.value)
                for e in copy.mdpt
            )

        first = snapshot(self.copies[0])
        return all(snapshot(copy) == first for copy in self.copies[1:])
