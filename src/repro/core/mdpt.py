"""Memory Dependence Prediction Table (MDPT) — paper Section 4.1.

An MDPT entry identifies a static dependence and predicts whether
subsequent dynamic instances of the (store PC, load PC) pair will
mis-speculate.  Fields per the paper: valid flag, load PC, store PC,
dependence distance (DIST), and the optional prediction state.

The simulated structure is fully associative with LRU replacement
(the paper maintains LRU information for replacement).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class MDPTEntry:
    """One MDPT entry."""

    __slots__ = ("valid", "load_pc", "store_pc", "distance", "state", "last_use")

    def __init__(self, load_pc, store_pc, distance, state, last_use):
        self.valid = True
        self.load_pc = load_pc
        self.store_pc = store_pc
        self.distance = distance
        self.state = state
        self.last_use = last_use

    @property
    def pair(self) -> Tuple[int, int]:
        return (self.store_pc, self.load_pc)

    def __repr__(self):
        return "MDPTEntry(store_pc=%d, load_pc=%d, dist=%d, state=%r)" % (
            self.store_pc,
            self.load_pc,
            self.distance,
            self.state,
        )


class MDPT:
    """Fully-associative prediction table with LRU replacement."""

    def __init__(self, capacity, predictor):
        if capacity <= 0:
            raise ValueError("MDPT capacity must be positive")
        self.capacity = capacity
        self.predictor = predictor
        self._by_pair: Dict[Tuple[int, int], MDPTEntry] = {}
        self._by_load: Dict[int, List[MDPTEntry]] = {}
        self._by_store: Dict[int, List[MDPTEntry]] = {}
        self._clock = 0
        self.allocations = 0
        self.evictions = 0
        self.primed = 0

    def __len__(self):
        return len(self._by_pair)

    def __iter__(self):
        return iter(self._by_pair.values())

    def _touch(self, entry):
        self._clock += 1
        entry.last_use = self._clock

    def _unlink(self, entry):
        entry.valid = False
        del self._by_pair[entry.pair]
        self._by_load[entry.load_pc].remove(entry)
        if not self._by_load[entry.load_pc]:
            del self._by_load[entry.load_pc]
        self._by_store[entry.store_pc].remove(entry)
        if not self._by_store[entry.store_pc]:
            del self._by_store[entry.store_pc]

    def _evict_lru(self):
        victim = min(self._by_pair.values(), key=lambda e: e.last_use)
        self._unlink(victim)
        self.evictions += 1
        return victim

    def _allocate_or_refresh(self, store_pc, load_pc, distance) -> MDPTEntry:
        entry = self._by_pair.get((store_pc, load_pc))
        if entry is None:
            if len(self._by_pair) >= self.capacity:
                self._evict_lru()
            self._clock += 1
            entry = MDPTEntry(
                load_pc,
                store_pc,
                distance,
                self.predictor.make_state(),
                self._clock,
            )
            self._by_pair[entry.pair] = entry
            self._by_load.setdefault(load_pc, []).append(entry)
            self._by_store.setdefault(store_pc, []).append(entry)
            self.allocations += 1
        else:
            entry.distance = distance
            self._touch(entry)
        return entry

    def record_mis_speculation(
        self, store_pc, load_pc, distance, store_task_pc=None
    ) -> MDPTEntry:
        """Allocate or strengthen the entry for a mis-speculated pair.

        The DIST field records the instance-number difference observed
        at the mis-speculation; repeated mis-speculations refresh it
        (the dependence distance may drift, e.g. across loop phases).
        """
        entry = self._allocate_or_refresh(store_pc, load_pc, distance)
        self.predictor.on_mis_speculation(entry.state, store_task_pc)
        return entry

    def install(self, store_pc, load_pc, distance) -> MDPTEntry:
        """Pre-install an entry without observing a mis-speculation.

        This is the static-priming entry point: a compile-time analysis
        that *proves* a (store, load) pair aliases at a known dependence
        distance can seed the table before the first dynamic instruction,
        so the pair synchronizes from its very first encounter instead of
        paying one cold-start squash to learn it.  Predictor state starts
        at its usual allocation value (at or above threshold), but no
        mis-speculation event is recorded.
        """
        entry = self._allocate_or_refresh(store_pc, load_pc, distance)
        self.primed += 1
        return entry

    def lookup_load(self, load_pc) -> List[MDPTEntry]:
        """All valid entries whose load PC matches (refreshes LRU)."""
        entries = self._by_load.get(load_pc, [])
        for entry in entries:
            self._touch(entry)
        return list(entries)

    def lookup_store(self, store_pc) -> List[MDPTEntry]:
        """All valid entries whose store PC matches (refreshes LRU)."""
        entries = self._by_store.get(store_pc, [])
        for entry in entries:
            self._touch(entry)
        return list(entries)

    def get(self, store_pc, load_pc) -> Optional[MDPTEntry]:
        """Exact-pair lookup without LRU side effects (for inspection)."""
        return self._by_pair.get((store_pc, load_pc))

    def has_entry_for_load(self, load_pc) -> bool:
        """True when any valid entry guards *load_pc* (no LRU side
        effects) — the one-producer-per-load guard consulted before a
        static or slice-warmed install: a load holding entries against
        several conditional producers waits on stores that may never
        execute, which costs far more than the cold start it saves."""
        return bool(self._by_load.get(load_pc))

    def predict(self, entry, candidate_task_pc=None) -> bool:
        """Evaluate the predictor for one entry."""
        return self.predictor.predict(entry.state, candidate_task_pc)
