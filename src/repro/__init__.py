"""repro — a reproduction of Moshovos, Breach, Vijaykumar & Sohi,
"Dynamic Speculation and Synchronization of Data Dependences"
(ISCA 1997).

Subpackages:

* :mod:`repro.isa` — the RISC ISA, assembler DSL, parser, disassembler,
  and binary program images.
* :mod:`repro.frontend` — the functional interpreter, dynamic traces,
  the true-dependence oracle, and trace analysis.
* :mod:`repro.workloads` — the synthetic SPEC-signature suites, the
  microbenchmarks, and the random program generator.
* :mod:`repro.memsys` — banked data cache, i-cache, memory bus, and the
  Address Resolution Buffer.
* :mod:`repro.oracle` — the unrealistic-OoO window model, the Data
  Dependence Cache, and the dependence profiler.
* :mod:`repro.multiscalar` — the cycle-level Multiscalar timing
  simulator and the speculation policies.
* :mod:`repro.core` — the paper's contribution: MDPT, MDST, predictors,
  the synchronization engine, and the Section 6 extensions.
* :mod:`repro.experiments` — runners for every paper table and figure.

Quick start::

    from repro.workloads import get_workload
    from repro.multiscalar import simulate, MultiscalarConfig, make_policy

    trace = get_workload("compress").trace("test")
    stats = simulate(trace, MultiscalarConfig(stages=8), make_policy("esync"))
    print(stats.summary())
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
