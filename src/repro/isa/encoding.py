"""Binary encoding of the repro RISC ISA.

The paper's simulator consumes annotated big-endian MIPS binaries; this
module provides the equivalent for the repro ISA: a fixed 64-bit
big-endian encoding of each instruction plus an image format for whole
programs (instructions, labels dropped, initial memory, entry point,
task annotations preserved).

Encoding layout (two 32-bit words per instruction):

word 0:
    bits 31..24  opcode ordinal
    bits 23..18  rd  (0x3F when absent)
    bits 17..12  rs1 (0x3F when absent)
    bits 11..6   rs2 (0x3F when absent)
    bit  5       task-entry flag
    bits 4..0    reserved (zero)
word 1:
    either the signed 32-bit immediate, or the branch/jump target PC
    for control opcodes that carry one.

The encoding is intentionally simple — its purpose is byte-exact
round-tripping for program images, not hardware realism.
"""

from __future__ import annotations

import struct

from repro.isa.instructions import Instruction
from repro.isa.opcodes import Opcode, is_control
from repro.isa.program import Program

#: sentinel for "no register" in the 6-bit fields
_NO_REG = 0x3F

_OPCODES = list(Opcode)
_OPCODE_INDEX = {op: i for i, op in enumerate(_OPCODES)}

MAGIC = b"RPRO"
VERSION = 1


class EncodingError(Exception):
    """Raised on malformed encodings or images."""


def _reg_field(reg) -> int:
    return _NO_REG if reg is None else reg


def _reg_value(field) -> object:
    return None if field == _NO_REG else field


def encode_instruction(inst: Instruction) -> bytes:
    """Encode one instruction to its 8-byte big-endian form."""
    op_index = _OPCODE_INDEX[inst.op]
    word0 = (
        (op_index << 24)
        | (_reg_field(inst.rd) << 18)
        | (_reg_field(inst.rs1) << 12)
        | (_reg_field(inst.rs2) << 6)
        | (0x20 if inst.task_entry else 0)
    )
    if is_control(inst.op) and inst.target is not None:
        word1 = inst.target
    else:
        word1 = inst.imm & 0xFFFFFFFF
    return struct.pack(">II", word0, word1)


def decode_instruction(blob: bytes) -> Instruction:
    """Decode one 8-byte instruction."""
    if len(blob) != 8:
        raise EncodingError("instruction encodings are 8 bytes, got %d" % len(blob))
    word0, word1 = struct.unpack(">II", blob)
    op_index = word0 >> 24
    if op_index >= len(_OPCODES):
        raise EncodingError("invalid opcode ordinal %d" % op_index)
    op = _OPCODES[op_index]
    rd = _reg_value((word0 >> 18) & 0x3F)
    rs1 = _reg_value((word0 >> 12) & 0x3F)
    rs2 = _reg_value((word0 >> 6) & 0x3F)
    task_entry = bool(word0 & 0x20)
    imm = 0
    target = None
    if is_control(op) and op not in (Opcode.HALT, Opcode.JR):
        target = word1
    else:
        imm = word1 if word1 < 0x80000000 else word1 - 0x100000000
    return Instruction(
        op, rd=rd, rs1=rs1, rs2=rs2, imm=imm, target=target, task_entry=task_entry
    )


def encode_program(program: Program) -> bytes:
    """Serialize a program to a binary image."""
    parts = [MAGIC, struct.pack(">HHII", VERSION, 0, len(program), program.entry)]
    for inst in program.instructions:
        parts.append(encode_instruction(inst))
    memory = sorted(program.initial_memory.items())
    parts.append(struct.pack(">I", len(memory)))
    for addr, value in memory:
        if not isinstance(value, int):
            raise EncodingError(
                "initial memory value at %d is not an integer: %r" % (addr, value)
            )
        parts.append(struct.pack(">Iq", addr, value))
    name = program.name.encode("utf-8")
    parts.append(struct.pack(">H", len(name)))
    parts.append(name)
    return b"".join(parts)


def decode_program(blob: bytes) -> Program:
    """Deserialize a binary image back into a validated Program."""
    if blob[:4] != MAGIC:
        raise EncodingError("bad magic; not a repro program image")
    offset = 4
    version, _pad, count, entry = struct.unpack_from(">HHII", blob, offset)
    if version != VERSION:
        raise EncodingError("unsupported image version %d" % version)
    offset += struct.calcsize(">HHII")
    instructions = []
    for _ in range(count):
        instructions.append(decode_instruction(blob[offset : offset + 8]))
        offset += 8
    (n_memory,) = struct.unpack_from(">I", blob, offset)
    offset += 4
    memory = {}
    for _ in range(n_memory):
        addr, value = struct.unpack_from(">Iq", blob, offset)
        offset += struct.calcsize(">Iq")
        memory[addr] = value
    (name_len,) = struct.unpack_from(">H", blob, offset)
    offset += 2
    name = blob[offset : offset + name_len].decode("utf-8")
    program = Program(name, instructions, initial_memory=memory, entry=entry)
    return program.validate()


def save_program(program: Program, path):
    """Write a program image to *path*."""
    with open(path, "wb") as fh:
        fh.write(encode_program(program))


def load_program(path) -> Program:
    """Read a program image from *path*."""
    with open(path, "rb") as fh:
        return decode_program(fh.read())
