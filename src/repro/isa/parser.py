"""Text assembly parser.

Accepts a conventional assembly syntax and produces a validated
:class:`~repro.isa.program.Program` via the
:class:`~repro.isa.assembler.Assembler` DSL::

    .name counter
    .word 0x100 0          # initial memory
        li   s1, 0x100
        li   s3, 0
        li   s4, 10
    loop:
        .task              # the next instruction starts a task
        addi s3, s3, 1
        lw   t0, 0(s1)
        addi t0, t0, 1
        sw   t0, 0(s1)
        blt  s3, s4, loop
        halt

Comments run from ``#`` or ``;`` to end of line.  Memory operands use
``offset(base)``.  Directives: ``.name``, ``.entry``, ``.word``,
``.task``, ``.secret lo hi`` (tag an inclusive word-address range as
secret for the speculative-leak analysis).

Every parsed instruction carries its 1-based source line number
(:attr:`~repro.isa.instructions.Instruction.line`), which the linter
surfaces in ``--json`` diagnostics.
"""

from __future__ import annotations

import re

from repro.isa.assembler import Assembler
from repro.isa.program import Program, ProgramError

_LABEL_RE = re.compile(r"^([A-Za-z_][\w.$]*):$")
_MEM_RE = re.compile(r"^(-?\w+)\((\w+)\)$")

#: mnemonic -> Assembler method (identity unless renamed)
_METHOD_FOR = {
    "and": "and_",
    "or": "or_",
    "fadd.s": "fadd_s",
    "fsub.s": "fsub_s",
    "fmul.s": "fmul_s",
    "fdiv.s": "fdiv_s",
    "fsqrt.s": "fsqrt_s",
    "fadd.d": "fadd_d",
    "fsub.d": "fsub_d",
    "fmul.d": "fmul_d",
    "fdiv.d": "fdiv_d",
    "fsqrt.d": "fsqrt_d",
}

#: mnemonics whose final operand is a label
_BRANCHES = {"beq", "bne", "blt", "bge", "ble", "bgt"}
_JUMPS = {"j", "jal"}
_MEMORY = {"lw", "sw"}


class ParseError(ProgramError):
    """Raised with a line number when the source cannot be parsed."""

    def __init__(self, lineno, message):
        super().__init__("line %d: %s" % (lineno, message))
        self.lineno = lineno


def _to_int(token, lineno):
    try:
        return int(token, 0)
    except ValueError:
        raise ParseError(lineno, "expected an integer, got %r" % token) from None


def _split_operands(rest):
    return [part.strip() for part in rest.split(",") if part.strip()] if rest else []


def parse_assembly(source, name="program") -> Program:
    """Parse assembly text into a validated Program."""
    asm = Assembler(name)
    entry = 0

    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = re.split(r"[#;]", raw, maxsplit=1)[0].strip()
        if not line:
            continue

        label_match = _LABEL_RE.match(line)
        if label_match:
            asm.label(label_match.group(1))
            continue

        head, _, rest = line.partition(" ")
        mnemonic = head.lower()
        operands = _split_operands(rest.strip())

        if mnemonic == ".name":
            if not operands:
                raise ParseError(lineno, ".name needs a value")
            asm.name = operands[0]
            continue
        if mnemonic == ".entry":
            if not operands:
                raise ParseError(lineno, ".entry needs a label or PC")
            entry = operands[0]
            if re.fullmatch(r"-?\d+|0[xX][0-9a-fA-F]+", entry):
                entry = _to_int(entry, lineno)
            continue
        if mnemonic == ".word":
            tokens = re.split(r"[,\s]+", rest.strip())
            tokens = [t for t in tokens if t]
            if len(tokens) < 2:
                raise ParseError(lineno, ".word needs an address and value(s)")
            addr = _to_int(tokens[0], lineno)
            try:
                asm.data(addr, [_to_int(v, lineno) for v in tokens[1:]])
            except ProgramError as exc:
                raise ParseError(lineno, str(exc)) from None
            continue
        if mnemonic == ".task":
            asm.task_begin()
            continue
        if mnemonic == ".secret":
            tokens = re.split(r"[,\s]+", rest.strip())
            tokens = [t for t in tokens if t]
            if len(tokens) != 2:
                raise ParseError(lineno, ".secret needs a lo and a hi address")
            asm.secret(_to_int(tokens[0], lineno), _to_int(tokens[1], lineno))
            continue
        if mnemonic.startswith("."):
            raise ParseError(lineno, "unknown directive %r" % mnemonic)

        method_name = _METHOD_FOR.get(mnemonic, mnemonic)
        method = getattr(asm, method_name, None)
        if method is None or method_name.startswith("_"):
            raise ParseError(lineno, "unknown mnemonic %r" % mnemonic)

        emitted_from = asm.here()
        try:
            if mnemonic in _MEMORY:
                if len(operands) != 2:
                    raise ParseError(lineno, "%s needs 2 operands" % mnemonic)
                mem = _MEM_RE.match(operands[1])
                if not mem:
                    raise ParseError(
                        lineno, "expected offset(base), got %r" % operands[1]
                    )
                offset = _to_int(mem.group(1), lineno)
                method(operands[0], mem.group(2), offset)
            elif mnemonic in _BRANCHES:
                if len(operands) != 3:
                    raise ParseError(lineno, "%s needs 3 operands" % mnemonic)
                method(operands[0], operands[1], operands[2])
            elif mnemonic in _JUMPS:
                if len(operands) != 1:
                    raise ParseError(lineno, "%s needs a label" % mnemonic)
                method(operands[0])
            else:
                converted = [
                    _to_int(tok, lineno)
                    if re.fullmatch(r"-?\d+|0[xX][0-9a-fA-F]+", tok)
                    else tok
                    for tok in operands
                ]
                method(*converted)
        except ParseError:
            raise
        except (KeyError, ValueError, TypeError, ProgramError) as exc:
            raise ParseError(lineno, str(exc)) from None
        for inst in asm._instructions[emitted_from:]:
            inst.line = lineno

    try:
        return asm.assemble(entry=entry)
    except ProgramError as exc:
        raise ProgramError("assembly failed: %s" % exc) from None


def parse_file(path) -> Program:
    """Parse an assembly source file."""
    with open(path) as fh:
        return parse_assembly(fh.read())
