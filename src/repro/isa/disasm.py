"""Disassembler: Program -> parser-compatible assembly text.

``disassemble(program)`` emits text that
:func:`repro.isa.parser.parse_assembly` accepts and that reassembles
into an equivalent program (same instruction stream, memory image, and
entry point — label names are synthesized as ``L<pc>``).
"""

from __future__ import annotations

from typing import Dict, Set

from repro.isa.opcodes import Opcode, is_control
from repro.isa.program import Program
from repro.isa.registers import register_name

#: Opcodes rendered as ``op rd, rs1, rs2``
_RRR = {
    Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.NOR,
    Opcode.SLT, Opcode.MUL, Opcode.DIV, Opcode.REM,
    Opcode.FADD_S, Opcode.FSUB_S, Opcode.FMUL_S, Opcode.FDIV_S,
    Opcode.FADD_D, Opcode.FSUB_D, Opcode.FMUL_D, Opcode.FDIV_D,
}
#: Opcodes rendered as ``op rd, rs1, imm``
_RRI = {
    Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI, Opcode.SLTI,
    Opcode.SLL, Opcode.SRL, Opcode.SRA,
}
#: Opcodes rendered as ``op rd, rs1``
_RR = {Opcode.FSQRT_S, Opcode.FSQRT_D}
#: Opcodes rendered as ``op rd, imm``
_RI = {Opcode.LUI, Opcode.LI}

_MNEMONIC = {op: op.value for op in Opcode}


def _label(pc) -> str:
    return "L%d" % pc


def disassemble_instruction(inst, labels: Dict[int, str]) -> str:
    """Render one instruction (without label/annotation lines)."""
    op = inst.op
    mnemonic = _MNEMONIC[op]
    if op in _RRR:
        return "%s %s, %s, %s" % (
            mnemonic,
            register_name(inst.rd),
            register_name(inst.rs1),
            register_name(inst.rs2),
        )
    if op in _RRI:
        return "%s %s, %s, %d" % (
            mnemonic,
            register_name(inst.rd),
            register_name(inst.rs1),
            inst.imm,
        )
    if op in _RR:
        return "%s %s, %s" % (mnemonic, register_name(inst.rd), register_name(inst.rs1))
    if op in _RI:
        return "%s %s, %d" % (mnemonic, register_name(inst.rd), inst.imm)
    if op is Opcode.LW:
        return "lw %s, %d(%s)" % (
            register_name(inst.rd),
            inst.imm,
            register_name(inst.rs1),
        )
    if op is Opcode.SW:
        return "sw %s, %d(%s)" % (
            register_name(inst.rs2),
            inst.imm,
            register_name(inst.rs1),
        )
    if op in (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.BLE, Opcode.BGT):
        return "%s %s, %s, %s" % (
            mnemonic,
            register_name(inst.rs1),
            register_name(inst.rs2),
            labels[inst.target],
        )
    if op in (Opcode.J, Opcode.JAL):
        return "%s %s" % (mnemonic, labels[inst.target])
    if op is Opcode.JR:
        return "jr %s" % register_name(inst.rs1)
    if op is Opcode.HALT:
        return "halt"
    if op is Opcode.NOP:
        return "nop"
    raise AssertionError("unhandled opcode %s" % op)  # pragma: no cover


def disassemble(program: Program) -> str:
    """Render a full program as assembly text."""
    targets: Set[int] = set()
    for inst in program:
        if is_control(inst.op) and inst.target is not None:
            targets.add(inst.target)
    if program.entry != 0:
        targets.add(program.entry)
    labels = {pc: _label(pc) for pc in sorted(targets)}

    lines = [".name %s" % program.name]
    if program.entry != 0:
        lines.append(".entry %s" % labels[program.entry])
    for addr in sorted(program.initial_memory):
        lines.append(".word %d %d" % (addr, program.initial_memory[addr]))
    for pc, inst in enumerate(program.instructions):
        if pc in labels:
            lines.append("%s:" % labels[pc])
        if inst.task_entry:
            lines.append("    .task")
        lines.append("    %s" % disassemble_instruction(inst, labels))
    return "\n".join(lines) + "\n"
