"""The repro RISC ISA: registers, opcodes, instructions, programs, assembler."""

from repro.isa.assembler import Assembler
from repro.isa.encoding import (
    EncodingError,
    decode_instruction,
    decode_program,
    encode_instruction,
    encode_program,
    load_program,
    save_program,
)
from repro.isa.disasm import disassemble, disassemble_instruction
from repro.isa.instructions import Instruction
from repro.isa.parser import ParseError, parse_assembly, parse_file
from repro.isa.opcodes import FUClass, Opcode
from repro.isa.program import Program, ProgramError
from repro.isa.registers import (
    NUM_FP_REGS,
    NUM_INT_REGS,
    NUM_REGS,
    ZERO,
    is_fp_register,
    parse_register,
    register_name,
)

__all__ = [
    "Assembler",
    "EncodingError",
    "FUClass",
    "Instruction",
    "ParseError",
    "decode_instruction",
    "decode_program",
    "disassemble",
    "disassemble_instruction",
    "encode_instruction",
    "encode_program",
    "load_program",
    "parse_assembly",
    "parse_file",
    "save_program",
    "NUM_FP_REGS",
    "NUM_INT_REGS",
    "NUM_REGS",
    "Opcode",
    "Program",
    "ProgramError",
    "ZERO",
    "is_fp_register",
    "parse_register",
    "register_name",
]
