"""Register name space for the repro RISC ISA.

The ISA exposes 32 integer registers and 32 floating-point registers.
Internally every register is a small integer index:

* integer registers occupy indices ``0..31``,
* floating-point registers occupy indices ``32..63``.

Integer register 0 (``zero``) is hard-wired to the value 0; writes to it
are discarded by the interpreter.  The conventional MIPS-style aliases
(``v0``, ``a0``, ``t0``, ``s0``, ``sp``, ``ra``, ...) are provided because
the synthetic workloads read much better with them.
"""

from __future__ import annotations

NUM_INT_REGS = 32
NUM_FP_REGS = 32
NUM_REGS = NUM_INT_REGS + NUM_FP_REGS

#: Index of the hard-wired zero register.
ZERO = 0

_INT_ALIASES = {
    "zero": 0,
    "at": 1,
    "v0": 2,
    "v1": 3,
    "a0": 4,
    "a1": 5,
    "a2": 6,
    "a3": 7,
    "t0": 8,
    "t1": 9,
    "t2": 10,
    "t3": 11,
    "t4": 12,
    "t5": 13,
    "t6": 14,
    "t7": 15,
    "s0": 16,
    "s1": 17,
    "s2": 18,
    "s3": 19,
    "s4": 20,
    "s5": 21,
    "s6": 22,
    "s7": 23,
    "t8": 24,
    "t9": 25,
    "k0": 26,
    "k1": 27,
    "gp": 28,
    "sp": 29,
    "fp": 30,
    "ra": 31,
}

#: Mapping from every accepted register name to its index.
REGISTER_NAMES = {}
REGISTER_NAMES.update(_INT_ALIASES)
for _i in range(NUM_INT_REGS):
    REGISTER_NAMES["r%d" % _i] = _i
for _i in range(NUM_FP_REGS):
    REGISTER_NAMES["f%d" % _i] = NUM_INT_REGS + _i

#: Reverse mapping used when pretty-printing instructions.  Prefer the
#: conventional alias for integer registers.
_INDEX_TO_NAME = {}
for _name, _idx in sorted(REGISTER_NAMES.items()):
    _INDEX_TO_NAME.setdefault(_idx, _name)
for _name, _idx in _INT_ALIASES.items():
    _INDEX_TO_NAME[_idx] = _name


def parse_register(name):
    """Return the register index for *name*.

    *name* may already be an integer index (returned unchanged after a
    range check) or any accepted register name such as ``"t0"``,
    ``"r8"``, or ``"f3"``.

    Raises:
        KeyError: if the name is not a known register.
        ValueError: if an integer index is out of range.
    """
    if isinstance(name, int):
        if not 0 <= name < NUM_REGS:
            raise ValueError("register index out of range: %d" % name)
        return name
    try:
        return REGISTER_NAMES[name]
    except KeyError:
        raise KeyError("unknown register name: %r" % (name,)) from None


def register_name(index):
    """Return the canonical printable name for register *index*."""
    if not 0 <= index < NUM_REGS:
        raise ValueError("register index out of range: %d" % index)
    return _INDEX_TO_NAME[index]


def is_fp_register(index):
    """Return True if *index* names a floating-point register."""
    return NUM_INT_REGS <= index < NUM_REGS
