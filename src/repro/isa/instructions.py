"""Static instruction representation.

A :class:`Instruction` is one static instruction of a
:class:`~repro.isa.program.Program`.  Program counters are instruction
indices (the ISA has a fixed 1-word encoding, so index and word address
differ only by a constant factor that nothing in the reproduction
depends on).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.isa.opcodes import (
    OPCODE_CLASS,
    Opcode,
    is_conditional_branch,
    is_load,
    is_store,
)
from repro.isa.registers import register_name


@dataclass
class Instruction:
    """One static instruction.

    Attributes:
        op: the :class:`~repro.isa.opcodes.Opcode`.
        rd: destination register index, or None.
        rs1: first source register index, or None.  For memory opcodes this
            is the base-address register.
        rs2: second source register index, or None.  For ``SW`` this is the
            register holding the value to store.
        imm: immediate operand (also the byte offset for memory opcodes).
        target: resolved branch/jump target PC, or None.
        label: unresolved symbolic target, kept for diagnostics.
        task_entry: True if a new Multiscalar task begins at this
            instruction (set by the assembler's ``task_begin`` marker).
        pc: index of this instruction within its program.
        line: 1-based source line this instruction came from, or None
            for programs built directly through the Assembler DSL.
    """

    op: Opcode
    rd: Optional[int] = None
    rs1: Optional[int] = None
    rs2: Optional[int] = None
    imm: int = 0
    target: Optional[int] = None
    label: Optional[str] = None
    task_entry: bool = False
    pc: int = field(default=-1)
    line: Optional[int] = None

    @property
    def fu_class(self):
        """Functional-unit class of this instruction."""
        return OPCODE_CLASS[self.op]

    @property
    def is_load(self) -> bool:
        return is_load(self.op)

    @property
    def is_store(self) -> bool:
        return is_store(self.op)

    @property
    def is_memory(self) -> bool:
        return is_load(self.op) or is_store(self.op)

    @property
    def is_branch(self) -> bool:
        return is_conditional_branch(self.op)

    def sources(self):
        """Return the tuple of source register indices this instruction reads."""
        srcs = []
        if self.rs1 is not None:
            srcs.append(self.rs1)
        if self.rs2 is not None:
            srcs.append(self.rs2)
        return tuple(srcs)

    def destination(self):
        """Return the destination register index or None."""
        return self.rd

    def __str__(self):
        parts = [self.op.value]
        operands = []
        if self.rd is not None:
            operands.append(register_name(self.rd))
        if self.rs1 is not None:
            if self.is_memory:
                operands.append("%d(%s)" % (self.imm, register_name(self.rs1)))
            else:
                operands.append(register_name(self.rs1))
        if self.rs2 is not None and not self.is_memory:
            operands.append(register_name(self.rs2))
        if self.rs2 is not None and self.op is Opcode.SW:
            # SW prints as: sw value, offset(base)
            operands = [
                register_name(self.rs2),
                "%d(%s)" % (self.imm, register_name(self.rs1)),
            ]
        if not self.is_memory and self.rs2 is None and self.rd is not None:
            if self.op not in (Opcode.JAL,):
                if self.imm or self.op in (
                    Opcode.ADDI,
                    Opcode.ANDI,
                    Opcode.ORI,
                    Opcode.XORI,
                    Opcode.SLTI,
                    Opcode.LUI,
                    Opcode.LI,
                    Opcode.SLL,
                    Opcode.SRL,
                    Opcode.SRA,
                ):
                    operands.append(str(self.imm))
        if self.label is not None:
            operands.append(self.label)
        elif self.target is not None:
            operands.append("@%d" % self.target)
        if operands:
            parts.append(", ".join(operands))
        text = " ".join(parts)
        if self.task_entry:
            text = "[task] " + text
        return text
