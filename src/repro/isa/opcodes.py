"""Opcode and functional-unit-class definitions for the repro RISC ISA.

The ISA is a small MIPS-flavoured load/store architecture.  Each opcode
belongs to exactly one :class:`FUClass`, which determines the functional
unit it executes on and its latency in the Multiscalar timing model
(paper Table 2).
"""

from __future__ import annotations

import enum


class FUClass(enum.Enum):
    """Functional-unit classes, mirroring the paper's Table 2 categories."""

    SIMPLE_INT = "simple-int"
    COMPLEX_INT = "complex-int"
    BRANCH = "branch"
    MEMORY = "memory"
    FP_ADD_SP = "fp-add-sp"
    FP_ADD_DP = "fp-add-dp"
    FP_MUL_SP = "fp-mul-sp"
    FP_MUL_DP = "fp-mul-dp"
    FP_DIV_SP = "fp-div-sp"
    FP_DIV_DP = "fp-div-dp"
    FP_SQRT_SP = "fp-sqrt-sp"
    FP_SQRT_DP = "fp-sqrt-dp"


class Opcode(enum.Enum):
    """All opcodes of the ISA.

    Values are the assembly mnemonics.  ``imm``-form arithmetic opcodes
    take ``(rd, rs1, imm)``; register-form take ``(rd, rs1, rs2)``.
    Memory opcodes address memory as ``base + offset`` with word (4-byte)
    granularity.  Branch opcodes compare two registers and jump to a
    label.
    """

    # --- simple integer ------------------------------------------------
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOR = "nor"
    SLT = "slt"
    SLL = "sll"
    SRL = "srl"
    SRA = "sra"
    ADDI = "addi"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    SLTI = "slti"
    LUI = "lui"
    LI = "li"

    # --- complex integer ----------------------------------------------
    MUL = "mul"
    DIV = "div"
    REM = "rem"

    # --- memory ---------------------------------------------------------
    LW = "lw"
    SW = "sw"

    # --- control --------------------------------------------------------
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    BLE = "ble"
    BGT = "bgt"
    J = "j"
    JAL = "jal"
    JR = "jr"
    HALT = "halt"
    NOP = "nop"

    # --- floating point (single / double precision) ---------------------
    FADD_S = "fadd.s"
    FSUB_S = "fsub.s"
    FMUL_S = "fmul.s"
    FDIV_S = "fdiv.s"
    FSQRT_S = "fsqrt.s"
    FADD_D = "fadd.d"
    FSUB_D = "fsub.d"
    FMUL_D = "fmul.d"
    FDIV_D = "fdiv.d"
    FSQRT_D = "fsqrt.d"


#: Opcode -> functional-unit class.
OPCODE_CLASS = {
    Opcode.ADD: FUClass.SIMPLE_INT,
    Opcode.SUB: FUClass.SIMPLE_INT,
    Opcode.AND: FUClass.SIMPLE_INT,
    Opcode.OR: FUClass.SIMPLE_INT,
    Opcode.XOR: FUClass.SIMPLE_INT,
    Opcode.NOR: FUClass.SIMPLE_INT,
    Opcode.SLT: FUClass.SIMPLE_INT,
    Opcode.SLL: FUClass.SIMPLE_INT,
    Opcode.SRL: FUClass.SIMPLE_INT,
    Opcode.SRA: FUClass.SIMPLE_INT,
    Opcode.ADDI: FUClass.SIMPLE_INT,
    Opcode.ANDI: FUClass.SIMPLE_INT,
    Opcode.ORI: FUClass.SIMPLE_INT,
    Opcode.XORI: FUClass.SIMPLE_INT,
    Opcode.SLTI: FUClass.SIMPLE_INT,
    Opcode.LUI: FUClass.SIMPLE_INT,
    Opcode.LI: FUClass.SIMPLE_INT,
    Opcode.MUL: FUClass.COMPLEX_INT,
    Opcode.DIV: FUClass.COMPLEX_INT,
    Opcode.REM: FUClass.COMPLEX_INT,
    Opcode.LW: FUClass.MEMORY,
    Opcode.SW: FUClass.MEMORY,
    Opcode.BEQ: FUClass.BRANCH,
    Opcode.BNE: FUClass.BRANCH,
    Opcode.BLT: FUClass.BRANCH,
    Opcode.BGE: FUClass.BRANCH,
    Opcode.BLE: FUClass.BRANCH,
    Opcode.BGT: FUClass.BRANCH,
    Opcode.J: FUClass.BRANCH,
    Opcode.JAL: FUClass.BRANCH,
    Opcode.JR: FUClass.BRANCH,
    Opcode.HALT: FUClass.BRANCH,
    Opcode.NOP: FUClass.SIMPLE_INT,
    Opcode.FADD_S: FUClass.FP_ADD_SP,
    Opcode.FSUB_S: FUClass.FP_ADD_SP,
    Opcode.FMUL_S: FUClass.FP_MUL_SP,
    Opcode.FDIV_S: FUClass.FP_DIV_SP,
    Opcode.FSQRT_S: FUClass.FP_SQRT_SP,
    Opcode.FADD_D: FUClass.FP_ADD_DP,
    Opcode.FSUB_D: FUClass.FP_ADD_DP,
    Opcode.FMUL_D: FUClass.FP_MUL_DP,
    Opcode.FDIV_D: FUClass.FP_DIV_DP,
    Opcode.FSQRT_D: FUClass.FP_SQRT_DP,
}

#: Opcodes that read memory.
LOAD_OPCODES = frozenset({Opcode.LW})
#: Opcodes that write memory.
STORE_OPCODES = frozenset({Opcode.SW})
#: Opcodes that end a basic block.
CONTROL_OPCODES = frozenset(
    {
        Opcode.BEQ,
        Opcode.BNE,
        Opcode.BLT,
        Opcode.BGE,
        Opcode.BLE,
        Opcode.BGT,
        Opcode.J,
        Opcode.JAL,
        Opcode.JR,
        Opcode.HALT,
    }
)
#: Conditional branches (two register sources, taken/not-taken outcome).
BRANCH_OPCODES = frozenset(
    {Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.BLE, Opcode.BGT}
)


def is_load(opcode):
    """Return True if *opcode* reads memory."""
    return opcode in LOAD_OPCODES


def is_store(opcode):
    """Return True if *opcode* writes memory."""
    return opcode in STORE_OPCODES


def is_memory(opcode):
    """Return True if *opcode* accesses memory."""
    return opcode in LOAD_OPCODES or opcode in STORE_OPCODES


def is_control(opcode):
    """Return True if *opcode* may redirect control flow."""
    return opcode in CONTROL_OPCODES


def is_conditional_branch(opcode):
    """Return True if *opcode* is a conditional two-source branch."""
    return opcode in BRANCH_OPCODES
