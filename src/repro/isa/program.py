"""Program container for the repro RISC ISA."""

from __future__ import annotations

from typing import Dict, List

from repro.isa.instructions import Instruction
from repro.isa.opcodes import Opcode, is_control
from repro.isa.registers import NUM_REGS


class ProgramError(Exception):
    """Raised when a program fails validation."""


class Program:
    """An assembled program: instructions, labels, and initial memory.

    Attributes:
        name: human-readable program name (used in reports).
        instructions: list of :class:`Instruction`, index == PC.
        labels: mapping from label name to PC.
        initial_memory: mapping from byte address to initial word value.
        entry: PC of the first instruction to execute.
        secret_ranges: inclusive ``(lo, hi)`` word-address ranges tagged
            secret by ``.secret`` directives (consumed by the
            speculative-leak analysis; empty for ordinary programs).
    """

    def __init__(
        self,
        name,
        instructions,
        labels=None,
        initial_memory=None,
        entry=0,
        secret_ranges=None,
    ):
        self.name = name
        self.instructions: List[Instruction] = list(instructions)
        self.labels: Dict[str, int] = dict(labels or {})
        self.initial_memory: Dict[int, object] = dict(initial_memory or {})
        self.entry = entry
        self.secret_ranges: List[tuple] = [
            (int(lo), int(hi)) for lo, hi in (secret_ranges or [])
        ]
        for pc, inst in enumerate(self.instructions):
            inst.pc = pc

    def __len__(self):
        return len(self.instructions)

    def __getitem__(self, pc) -> Instruction:
        return self.instructions[pc]

    def __iter__(self):
        return iter(self.instructions)

    def pc_of(self, label) -> int:
        """Return the PC a label refers to."""
        try:
            return self.labels[label]
        except KeyError:
            raise ProgramError("unknown label: %r" % (label,)) from None

    def validate(self):
        """Check structural well-formedness.  Raises ProgramError on failure.

        Checks performed:
        * at least one instruction, entry PC in range;
        * every control instruction with a symbolic target resolved;
        * all branch/jump targets within the program;
        * all register indices in range;
        * the program can terminate (contains a HALT or a JR, the latter
          assumed to eventually return past the program end);
        * initial memory addresses are word-aligned.
        """
        if not self.instructions:
            raise ProgramError("empty program")
        if not 0 <= self.entry < len(self.instructions):
            raise ProgramError("entry PC out of range: %d" % self.entry)
        has_exit = False
        for pc, inst in enumerate(self.instructions):
            if inst.pc != pc:
                raise ProgramError("instruction %d has stale pc %d" % (pc, inst.pc))
            for reg in (inst.rd, inst.rs1, inst.rs2):
                if reg is not None and not 0 <= reg < NUM_REGS:
                    raise ProgramError(
                        "instruction %d (%s): register index %d out of range"
                        % (pc, inst.op.value, reg)
                    )
            if is_control(inst.op):
                if inst.op in (Opcode.HALT, Opcode.JR):
                    has_exit = True
                elif inst.target is None:
                    raise ProgramError(
                        "instruction %d (%s): unresolved target %r"
                        % (pc, inst, inst.label)
                    )
                elif not 0 <= inst.target < len(self.instructions):
                    raise ProgramError(
                        "instruction %d (%s): target %d out of range"
                        % (pc, inst, inst.target)
                    )
        if not has_exit:
            raise ProgramError("program has no HALT or JR instruction")
        for addr in self.initial_memory:
            if addr % 4 != 0:
                raise ProgramError("initial memory address %d not word-aligned" % addr)
        return self

    def static_loads(self):
        """Return the PCs of all static load instructions."""
        return [inst.pc for inst in self.instructions if inst.is_load]

    def static_stores(self):
        """Return the PCs of all static store instructions."""
        return [inst.pc for inst in self.instructions if inst.is_store]

    def task_entries(self):
        """Return the PCs of all static task-entry points."""
        return [inst.pc for inst in self.instructions if inst.task_entry]

    def listing(self) -> str:
        """Return a human-readable assembly listing."""
        pc_to_labels: Dict[int, List[str]] = {}
        for label, pc in self.labels.items():
            pc_to_labels.setdefault(pc, []).append(label)
        lines = []
        for pc, inst in enumerate(self.instructions):
            for label in sorted(pc_to_labels.get(pc, ())):
                lines.append("%s:" % label)
            lines.append("  %4d: %s" % (pc, inst))
        return "\n".join(lines)

    def __repr__(self):
        return "Program(name=%r, %d instructions, %d labels)" % (
            self.name,
            len(self.instructions),
            len(self.labels),
        )
