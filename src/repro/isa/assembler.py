"""A small assembler DSL for building repro RISC programs from Python.

Example:
    >>> from repro.isa.assembler import Assembler
    >>> a = Assembler("count")
    >>> a.li("t0", 0)
    >>> a.label("loop")
    >>> a.task_begin()
    >>> a.addi("t0", "t0", 1)
    >>> a.slti("t1", "t0", 10)
    >>> a.bne("t1", "zero", "loop")
    >>> a.halt()
    >>> program = a.assemble()
    >>> len(program)
    5
"""

from __future__ import annotations

from typing import Dict, List

from repro.isa.instructions import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program, ProgramError
from repro.isa.registers import parse_register


class Assembler:
    """Incrementally builds a :class:`~repro.isa.program.Program`.

    Each mnemonic method appends one instruction.  Labels attach to the
    next emitted instruction.  ``task_begin()`` marks the next emitted
    instruction as the start of a Multiscalar task.
    """

    def __init__(self, name="program"):
        self.name = name
        self._instructions: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._pending_labels: List[str] = []
        self._pending_task_entry = False
        self._initial_memory: Dict[int, object] = {}
        self._secret_ranges: List[tuple] = []

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------

    def label(self, name):
        """Define *name* at the current position."""
        if name in self._labels or name in self._pending_labels:
            raise ProgramError("duplicate label: %r" % (name,))
        self._pending_labels.append(name)
        return self

    def task_begin(self):
        """Mark the next emitted instruction as a Multiscalar task entry."""
        self._pending_task_entry = True
        return self

    def word(self, addr, value):
        """Set the initial memory word at byte address *addr* to *value*."""
        if addr % 4 != 0:
            raise ProgramError("address %d not word-aligned" % addr)
        self._initial_memory[addr] = value
        return self

    def data(self, addr, values):
        """Lay out consecutive initial memory words starting at *addr*."""
        for i, value in enumerate(values):
            self.word(addr + 4 * i, value)
        return self

    def secret(self, lo, hi):
        """Mark the word addresses in ``[lo, hi]`` (inclusive) as secret.

        The range is carried on the assembled Program for the
        speculative-leak analysis (:mod:`repro.staticdep.spectaint`).
        Degenerate ranges are accepted here and flagged by the linter's
        ``secret-range-invalid`` rule rather than rejected outright, so
        a single lint run reports every problem at once.
        """
        self._secret_ranges.append((int(lo), int(hi)))
        return self

    def here(self):
        """Return the PC of the next instruction to be emitted."""
        return len(self._instructions)

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------

    def _emit(self, inst):
        inst.pc = len(self._instructions)
        if self._pending_labels:
            for name in self._pending_labels:
                self._labels[name] = inst.pc
            self._pending_labels = []
        if self._pending_task_entry:
            inst.task_entry = True
            self._pending_task_entry = False
        self._instructions.append(inst)
        return inst

    def _rrr(self, op, rd, rs1, rs2):
        return self._emit(
            Instruction(
                op,
                rd=parse_register(rd),
                rs1=parse_register(rs1),
                rs2=parse_register(rs2),
            )
        )

    def _rri(self, op, rd, rs1, imm):
        return self._emit(
            Instruction(
                op, rd=parse_register(rd), rs1=parse_register(rs1), imm=int(imm)
            )
        )

    # --- simple integer -------------------------------------------------

    def add(self, rd, rs1, rs2):
        return self._rrr(Opcode.ADD, rd, rs1, rs2)

    def sub(self, rd, rs1, rs2):
        return self._rrr(Opcode.SUB, rd, rs1, rs2)

    def and_(self, rd, rs1, rs2):
        return self._rrr(Opcode.AND, rd, rs1, rs2)

    def or_(self, rd, rs1, rs2):
        return self._rrr(Opcode.OR, rd, rs1, rs2)

    def xor(self, rd, rs1, rs2):
        return self._rrr(Opcode.XOR, rd, rs1, rs2)

    def nor(self, rd, rs1, rs2):
        return self._rrr(Opcode.NOR, rd, rs1, rs2)

    def slt(self, rd, rs1, rs2):
        return self._rrr(Opcode.SLT, rd, rs1, rs2)

    def sll(self, rd, rs1, shamt):
        return self._rri(Opcode.SLL, rd, rs1, shamt)

    def srl(self, rd, rs1, shamt):
        return self._rri(Opcode.SRL, rd, rs1, shamt)

    def sra(self, rd, rs1, shamt):
        return self._rri(Opcode.SRA, rd, rs1, shamt)

    def addi(self, rd, rs1, imm):
        return self._rri(Opcode.ADDI, rd, rs1, imm)

    def andi(self, rd, rs1, imm):
        return self._rri(Opcode.ANDI, rd, rs1, imm)

    def ori(self, rd, rs1, imm):
        return self._rri(Opcode.ORI, rd, rs1, imm)

    def xori(self, rd, rs1, imm):
        return self._rri(Opcode.XORI, rd, rs1, imm)

    def slti(self, rd, rs1, imm):
        return self._rri(Opcode.SLTI, rd, rs1, imm)

    def lui(self, rd, imm):
        return self._emit(Instruction(Opcode.LUI, rd=parse_register(rd), imm=int(imm)))

    def li(self, rd, imm):
        """Load immediate (pseudo-instruction, one cycle)."""
        return self._emit(Instruction(Opcode.LI, rd=parse_register(rd), imm=int(imm)))

    def move(self, rd, rs):
        """Register move (pseudo: ``add rd, rs, zero``)."""
        return self._rrr(Opcode.ADD, rd, rs, "zero")

    # --- complex integer --------------------------------------------------

    def mul(self, rd, rs1, rs2):
        return self._rrr(Opcode.MUL, rd, rs1, rs2)

    def div(self, rd, rs1, rs2):
        return self._rrr(Opcode.DIV, rd, rs1, rs2)

    def rem(self, rd, rs1, rs2):
        return self._rrr(Opcode.REM, rd, rs1, rs2)

    # --- memory -----------------------------------------------------------

    def lw(self, rd, base, offset=0):
        """Load the word at ``offset(base)`` into *rd*."""
        return self._emit(
            Instruction(
                Opcode.LW,
                rd=parse_register(rd),
                rs1=parse_register(base),
                imm=int(offset),
            )
        )

    def sw(self, rs_value, base, offset=0):
        """Store register *rs_value* to the word at ``offset(base)``."""
        return self._emit(
            Instruction(
                Opcode.SW,
                rs1=parse_register(base),
                rs2=parse_register(rs_value),
                imm=int(offset),
            )
        )

    # --- control ------------------------------------------------------------

    def _branch(self, op, rs1, rs2, label):
        return self._emit(
            Instruction(
                op, rs1=parse_register(rs1), rs2=parse_register(rs2), label=label
            )
        )

    def beq(self, rs1, rs2, label):
        return self._branch(Opcode.BEQ, rs1, rs2, label)

    def bne(self, rs1, rs2, label):
        return self._branch(Opcode.BNE, rs1, rs2, label)

    def blt(self, rs1, rs2, label):
        return self._branch(Opcode.BLT, rs1, rs2, label)

    def bge(self, rs1, rs2, label):
        return self._branch(Opcode.BGE, rs1, rs2, label)

    def ble(self, rs1, rs2, label):
        return self._branch(Opcode.BLE, rs1, rs2, label)

    def bgt(self, rs1, rs2, label):
        return self._branch(Opcode.BGT, rs1, rs2, label)

    def j(self, label):
        return self._emit(Instruction(Opcode.J, label=label))

    def jal(self, label):
        """Jump-and-link: saves the return PC in ``ra``."""
        return self._emit(
            Instruction(Opcode.JAL, rd=parse_register("ra"), label=label)
        )

    def jr(self, rs1="ra"):
        return self._emit(Instruction(Opcode.JR, rs1=parse_register(rs1)))

    def halt(self):
        return self._emit(Instruction(Opcode.HALT))

    def nop(self):
        return self._emit(Instruction(Opcode.NOP))

    # --- floating point -------------------------------------------------------

    def fadd_s(self, rd, rs1, rs2):
        return self._rrr(Opcode.FADD_S, rd, rs1, rs2)

    def fsub_s(self, rd, rs1, rs2):
        return self._rrr(Opcode.FSUB_S, rd, rs1, rs2)

    def fmul_s(self, rd, rs1, rs2):
        return self._rrr(Opcode.FMUL_S, rd, rs1, rs2)

    def fdiv_s(self, rd, rs1, rs2):
        return self._rrr(Opcode.FDIV_S, rd, rs1, rs2)

    def fsqrt_s(self, rd, rs1):
        return self._emit(
            Instruction(
                Opcode.FSQRT_S, rd=parse_register(rd), rs1=parse_register(rs1)
            )
        )

    def fadd_d(self, rd, rs1, rs2):
        return self._rrr(Opcode.FADD_D, rd, rs1, rs2)

    def fsub_d(self, rd, rs1, rs2):
        return self._rrr(Opcode.FSUB_D, rd, rs1, rs2)

    def fmul_d(self, rd, rs1, rs2):
        return self._rrr(Opcode.FMUL_D, rd, rs1, rs2)

    def fdiv_d(self, rd, rs1, rs2):
        return self._rrr(Opcode.FDIV_D, rd, rs1, rs2)

    def fsqrt_d(self, rd, rs1):
        return self._emit(
            Instruction(
                Opcode.FSQRT_D, rd=parse_register(rd), rs1=parse_register(rs1)
            )
        )

    # ------------------------------------------------------------------
    # finalization
    # ------------------------------------------------------------------

    def assemble(self, entry=0) -> Program:
        """Resolve labels and return a validated Program."""
        if self._pending_labels:
            raise ProgramError(
                "labels defined past the last instruction: %r" % self._pending_labels
            )
        if isinstance(entry, str):
            if entry not in self._labels:
                raise ProgramError("unknown entry label: %r" % (entry,))
            entry = self._labels[entry]
        for inst in self._instructions:
            if inst.label is not None:
                if inst.label not in self._labels:
                    raise ProgramError(
                        "instruction %d (%s): undefined label %r"
                        % (inst.pc, inst, inst.label)
                    )
                inst.target = self._labels[inst.label]
        program = Program(
            self.name,
            self._instructions,
            labels=self._labels,
            initial_memory=self._initial_memory,
            entry=entry,
            secret_ranges=self._secret_ranges,
        )
        return program.validate()
