"""Setuptools shim.

Metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works in offline environments that lack the
``wheel`` package (pip then falls back to the legacy editable install).
"""

from setuptools import setup

setup()
