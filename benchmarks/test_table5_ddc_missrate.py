"""Table 5: DDC miss rates under the unrealistic OoO model."""

from conftest import BENCH_SCALE, run_once

from repro.experiments import table5_ddc_missrate


def test_table5_ddc_missrate(benchmark):
    table = run_once(benchmark, table5_ddc_missrate, BENCH_SCALE)
    # paper shape: a 512-entry DDC captures nearly all dependences
    biggest = [row for row in table.rows if row[1] == 512]
    for row in biggest:
        assert all(rate <= 15.0 for rate in row[2:]), row
