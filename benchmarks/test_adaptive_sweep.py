"""Adaptive (successive-halving) sweep vs exhaustive on the figure-7 grid.

The perf claim under test: successive halving spends >=60% fewer
full-scale cell-cycles than the exhaustive grid while picking the same
top-1 configuration per workload.  The grid is the paper's design-space
shape — synchronization policies x MDPT/MDST capacity x split
structure x stage count — over SPECint95 workloads; the exhaustive
sweep runs the same grid so "same winner" is checked against ground
truth, not assumed.

The measured record lands in BENCH_results.json under ``"adaptive"``
and is gated by ``repro bench-report`` (savings floor 0.60, winners
must match).
"""

import time

from conftest import BENCH_SCALE

from repro.experiments.adaptive import adaptive_sweep
from repro.experiments.executor import source_fingerprint
from repro.experiments.sweeps import make_sweep_cell, sweep

WORKLOADS = ["compress95", "li"]

#: 2 policies x 2 capacities x 2 MDST capacities x 2 stage counts = 16
#: configurations per workload (eta=3 -> 3 rungs: 16 -> 6 -> 2)
GRID = dict(
    policies=("esync", "sync"),
    overrides={"stages": [4, 8]},
    policy_overrides={
        "capacity": [16, 64],
        "mdst_capacity": [16, 64],
        "structure": ["split"],
    },
)


def _full_scale_key(point):
    cell = make_sweep_cell(
        point.workload,
        point.policy,
        BENCH_SCALE,
        overrides=point.overrides,
        policy_overrides=point.policy_overrides,
    )
    return cell.key(source_fingerprint())


def _config_of(point):
    return (point.policy, tuple(point.overrides), tuple(point.policy_overrides))


def test_adaptive_sweep_savings(benchmark, bench_record):
    def run():
        adaptive = adaptive_sweep(WORKLOADS, scale=BENCH_SCALE, eta=3, **GRID)
        exhaustive = sweep(WORKLOADS, scale=BENCH_SCALE, **GRID)
        return adaptive, exhaustive

    start = time.perf_counter()
    adaptive, exhaustive = benchmark.pedantic(run, rounds=1, iterations=1)
    seconds = time.perf_counter() - start

    assert not exhaustive.failed and not adaptive.result.failed
    assert len(exhaustive.points) == 32
    assert [r["cells"] for r in adaptive.rungs] == [32, 12, 4]

    # same top-1 as exhaustive, under the same deterministic ranking
    # (metric value, then full-scale cell key)
    matches = {}
    for workload in WORKLOADS:
        candidates = [p for p in exhaustive.points if p.workload == workload]
        truth = min(candidates, key=lambda p: (p.cycles, _full_scale_key(p)))
        winner = adaptive.winners[workload]
        matches[workload] = _config_of(winner) == _config_of(truth)
        assert matches[workload], (
            "adaptive winner %r != exhaustive best %r for %s"
            % (_config_of(winner), _config_of(truth), workload)
        )
        # the winner's numbers are real full-scale results
        assert winner.cycles == truth.cycles

    # >=60% fewer full-scale cell units than the exhaustive grid
    assert adaptive.exhaustive_units == 32.0
    assert adaptive.savings >= 0.60, (
        "adaptive spent %.2f of %.0f units (%.1f%% saved, need >=60%%)"
        % (adaptive.adaptive_units, adaptive.exhaustive_units, 100 * adaptive.savings)
    )

    bench_record(
        seconds,
        adaptive={
            "eta": adaptive.eta,
            "metric": adaptive.metric,
            "rungs": adaptive.rungs,
            "adaptive_units": adaptive.adaptive_units,
            "exhaustive_units": adaptive.exhaustive_units,
            "savings": round(adaptive.savings, 4),
            "top1_match": all(matches.values()),
            "winners": {
                w: {
                    "policy": p.policy,
                    "stages": p.override("stages"),
                    "capacity": p.override("capacity"),
                    "mdst_capacity": p.override("mdst_capacity"),
                    "cycles": p.cycles,
                }
                for w, p in adaptive.winners.items()
            },
        },
    )
