"""Extension bench: register dependence speculation (paper Section 6).

The paper suggests the proposed techniques apply to register
dependences in multiple-program-counter models like Multiscalar.  This
bench quantifies it on the two microbenchmarks that bound the design
space: a rarely-updated cross-task register (speculation wins) and a
serial pointer chase (blind speculation loses, prediction recovers).
"""

from conftest import run_once

from repro.experiments import ExperimentTable
from repro.multiscalar import MultiscalarConfig, simulate, make_policy
from repro.workloads import get_workload

MODES = ("conservative", "oracle", "always", "predict")
KERNELS = ("micro-conditional-reg", "micro-pointer-chase", "micro-independent")


def extension_register_speculation(scale):
    table = ExperimentTable(
        "extension-regspec",
        "register dependence speculation modes (8 stages, cycles / reg-ms)",
        ["benchmark"] + ["%s" % m for m in MODES] + ["ms(always)", "ms(predict)"],
    )
    for name in KERNELS:
        trace = get_workload(name).trace(scale)
        cycles = {}
        regms = {}
        for mode in MODES:
            stats = simulate(
                trace,
                MultiscalarConfig(stages=8, register_speculation=mode),
                make_policy("psync"),
            )
            cycles[mode] = stats.cycles
            regms[mode] = stats.register_mis_speculations
        table.add_row(
            name,
            cycles["conservative"],
            cycles["oracle"],
            cycles["always"],
            cycles["predict"],
            regms["always"],
            regms["predict"],
        )
    return table


def test_extension_register_speculation(benchmark):
    table = run_once(benchmark, extension_register_speculation, "test")
    row = table.row("micro-conditional-reg")
    conservative, oracle, always, predict = row[1:5]
    assert predict <= oracle * 1.1          # prediction ~ perfect knowledge
    assert conservative > predict           # and beats no-speculation
