"""Figure 5: NEVER / ALWAYS / WAIT / PSYNC policy comparison."""

from conftest import BENCH_SCALE, run_once

from repro.experiments import figure5_policy_speedups


def test_figure5_policy_speedups(benchmark):
    table = run_once(benchmark, figure5_policy_speedups, BENCH_SCALE)
    # paper shapes
    for row in table.rows:
        stages, name, _ipc, always, wait, psync = row
        assert psync >= always - 1.0, row       # ideal >= blind
        if name == "compress":
            assert wait < always, row           # Figure 1(d) pathology
    # the PSYNC-ALWAYS gap grows with the window size
    gap = {4: 0.0, 8: 0.0}
    for row in table.rows:
        gap[row[0]] += row[5] - row[3]
    assert gap[8] > gap[4]
