"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
prints the reproduced rows (run ``pytest benchmarks/ --benchmark-only -s``
to see them).  Experiments are expensive, so each runs exactly once per
benchmark via ``run_once``.
"""

import pytest

#: scale used by the benchmark harness; "test" keeps a full table under
#: a couple of minutes while preserving every reported shape
BENCH_SCALE = "test"


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark *fn* with a single round (experiments are deterministic
    and expensive; statistical repetition adds nothing)."""
    result = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
    print()
    print(result.to_text())
    return result


@pytest.fixture(scope="session", autouse=True)
def warm_trace_cache():
    """Interpret every workload once up front so per-benchmark timings
    measure the experiment, not trace generation."""
    from repro.experiments import load_traces

    for suite_name in ("specint92", "specint95", "specfp95"):
        load_traces(suite_name, BENCH_SCALE)
    yield
