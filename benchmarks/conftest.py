"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
prints the reproduced rows (run ``pytest benchmarks/ --benchmark-only -s``
to see them).  Experiments are expensive, so each runs exactly once per
benchmark via ``run_once``.

Besides timing through pytest-benchmark, ``run_once`` records each
benchmark's wall time and the key values of the table it produced;
``pytest_sessionfinish`` writes the collection to ``BENCH_results.json``
at the repository root (CI uploads it as a build artifact), giving a
machine-readable history of both performance and reproduced numbers.

The harness opts into the executor's content-addressed result cache
(``repro.experiments.executor.ResultCache``): re-running the suite with
unchanged sources serves every table from ``.repro-bench-cache/`` in
milliseconds, and each BENCH_results.json record carries ``"cached"``
so cached timings are never mistaken for simulation timings.  Disable
with ``REPRO_BENCH_CACHE=0`` (or point it at another directory).
"""

import json
import os
import time
from pathlib import Path

import pytest

_REPO_ROOT = Path(__file__).resolve().parent.parent


def _bench_cache():
    setting = os.environ.get("REPRO_BENCH_CACHE", "")
    if setting in ("0", "off", "no"):
        return None
    from repro.experiments.executor import ResultCache

    return ResultCache(setting or str(_REPO_ROOT / ".repro-bench-cache"))

#: scale used by the benchmark harness; "test" keeps a full table under
#: a couple of minutes while preserving every reported shape
BENCH_SCALE = "test"

#: records accumulated by ``run_once`` over the session
_RESULTS = []


def _table_summary(result):
    """Key values of an :class:`ExperimentTable`-shaped result (duck
    typed so the harness works for any future result container)."""
    if not hasattr(result, "rows"):
        return {"repr": repr(result)[:200]}
    summary = {
        "experiment": getattr(result, "experiment", None),
        "title": getattr(result, "title", None),
        "columns": list(getattr(result, "columns", [])),
        "row_count": len(result.rows),
    }
    if result.rows:
        summary["first_row"] = list(result.rows[0])
        summary["last_row"] = list(result.rows[-1])
    profile = getattr(result, "profile", None)
    if profile:
        summary["profile"] = profile
    return summary


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark *fn* with a single round (experiments are deterministic
    and expensive; statistical repetition adds nothing).

    Table-shaped results are served from / written to the executor's
    result cache keyed on (runner, arguments, source fingerprint), so a
    rerun with unchanged sources measures the cache fetch instead of
    re-simulating."""
    from repro.experiments.executor import Cell
    from repro.experiments.results import ExperimentTable
    from repro.multiscalar import active_kernel

    cache = _bench_cache()
    # the kernel rides in the key even though results are bit-identical
    # across kernels: a REPRO_KERNEL=batched session must measure the
    # batched kernel, not fetch tables the event kernel cached
    cell = Cell.make(
        "bench",
        fn.__name__,
        args=[repr(a) for a in args],
        kwargs={k: repr(v) for k, v in sorted(kwargs.items())},
        kernel=active_kernel(),
    )
    key = cell.key() if cache is not None else None
    record = cache.get(key) if cache is not None else None

    timing = {}

    def timed(*a, **kw):
        start = time.perf_counter()
        if record is not None:
            out = ExperimentTable.from_json(record["payload"])
        else:
            out = fn(*a, **kw)
        timing["seconds"] = time.perf_counter() - start
        return out

    result = benchmark.pedantic(timed, args=args, kwargs=kwargs, rounds=1, iterations=1)
    if cache is not None and record is None and hasattr(result, "to_json"):
        payload = result.to_json()
        payload["profile"] = {}  # wall time is not part of the result
        cache.put(key, cell, payload)
    test_id = os.environ.get("PYTEST_CURRENT_TEST", "").split(" ")[0]
    _RESULTS.append(
        {
            "test": test_id,
            "seconds": round(timing.get("seconds", 0.0), 6),
            "cached": record is not None,
            "table": _table_summary(result),
        }
    )
    print()
    print(result.to_text())
    return result


@pytest.fixture
def bench_record():
    """Append a custom record to the session's BENCH_results.json.

    For benchmarks that measure something other than one table-producing
    experiment (e.g. the hot-path A/B legs), where ``run_once`` does not
    fit.  The current test id and wall seconds are mandatory-shaped like
    ``run_once`` records; anything else rides along verbatim.
    """

    def record(seconds, **extra):
        test_id = os.environ.get("PYTEST_CURRENT_TEST", "").split(" ")[0]
        _RESULTS.append(
            {"test": test_id, "seconds": round(seconds, 6), **extra}
        )

    return record


def _git_sha():
    """Short HEAD sha for history records; None outside a checkout."""
    import subprocess

    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=_REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def pytest_sessionfinish(session, exitstatus):
    """Persist the session's benchmark records.

    ``BENCH_results.json`` holds the latest session (overwritten each
    run, uploaded by CI); ``BENCH_history.jsonl`` accumulates one line
    per session keyed by git sha and timestamp, so ``repro
    bench-report`` can plot the performance trajectory across commits.
    """
    if not _RESULTS:
        return
    root = Path(__file__).resolve().parent.parent
    payload = {"scale": BENCH_SCALE, "results": _RESULTS}
    (root / "BENCH_results.json").write_text(json.dumps(payload, indent=2) + "\n")
    entry = {
        "git_sha": _git_sha(),
        "time": round(time.time(), 3),
        "scale": BENCH_SCALE,
        "results": _RESULTS,
    }
    with open(root / "BENCH_history.jsonl", "a") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")


@pytest.fixture(scope="session", autouse=True)
def warm_trace_cache():
    """Interpret every workload once up front so per-benchmark timings
    measure the experiment, not trace generation."""
    from repro.experiments import load_traces

    for suite_name in ("specint92", "specint95", "specfp95"):
        load_traces(suite_name, BENCH_SCALE)
    yield
