"""Extension bench: MDPT/MDST (1997) versus store sets (1998).

Head-to-head of the paper's mechanism against its successor on the
same substrate — the comparison the two papers never ran on shared
hardware.
"""

from conftest import BENCH_SCALE, run_once

from repro.experiments import ExperimentTable, load_traces
from repro.multiscalar import MultiscalarConfig, MultiscalarSimulator, make_policy


def extension_store_sets(scale):
    traces = load_traces("specint92", scale)
    table = ExperimentTable(
        "extension-storesets",
        "cycles: blind vs ESYNC (1997) vs store sets (1998) vs ideal (8 stages)",
        ["benchmark", "ALWAYS", "ESYNC", "STORESET", "PSYNC", "ss_ms"],
    )
    for name in sorted(traces):
        row = [name]
        ss_ms = 0
        for policy_name in ("always", "esync", "storeset", "psync"):
            sim = MultiscalarSimulator(
                traces[name], MultiscalarConfig(stages=8), make_policy(policy_name)
            )
            stats = sim.run()
            row.append(stats.cycles)
            if policy_name == "storeset":
                ss_ms = stats.mis_speculations
        row.append(ss_ms)
        table.add_row(*row)
    return table


def test_extension_store_sets(benchmark):
    table = run_once(benchmark, extension_store_sets, BENCH_SCALE)
    for row in table.rows:
        name, always, esync, storeset, psync, _ = row
        assert storeset <= always * 1.25 + 50, row   # never catastrophic
        # ideal synchronization bounds both mechanisms (small slack:
        # issue-slot arbitration can locally favour a non-ideal policy)
        assert psync <= min(esync, storeset) * 1.05 + 50, row
