"""Hot-path speed: trace cache + columnar index + event scheduler.

Four legs over figure 5's exact cell grid (the SPECint92 suite x
stage counts x NEVER/ALWAYS/WAIT/PSYNC), asserted cycle-identical:

* **legacy** — the pre-PR shape recreated in-tree: every workload is
  re-interpreted with ``run_program``, every simulator rebuilds its
  own static index, and the per-cycle scan scheduler drives issue.
* **cold** — first run on a fresh machine: empty trace cache (memory
  and disk), event scheduler, shared per-trace index.  Pays one
  interpretation + serialization per workload.
* **warm** — every later run: traces deserialized from the on-disk
  cache, event scheduler, shared index.
* **batched** — the warm configuration driven by the columnar
  struct-of-arrays kernel (``repro.multiscalar.batched``) instead of
  the object event kernel.  Its gate is relative and isolates the
  kernels: an extra *hot* event pass runs first with traces (and the
  shared index) already decoded in memory, then the batched pass over
  the same hot state — so the ratio compares issue loops, not
  deserialization.  The recorded ``batched_speedup`` is the honestly
  measured factor on this grid (~1.7x at scale=test; the original 2x
  target holds only for larger traces — compress at scale=large
  measures 2.3x — because short runs amortize less of the per-cell
  column setup).

The in-tree legacy leg *understates* what the seed actually cost:
the seed's scan also chased ``TraceEntry`` attribute chains and
rebuilt its pending lists every cycle, code that no longer exists.
``hotpath_baseline.json`` therefore carries ``seed_factor`` — the
measured ratio between ``repro experiment figure5 --jobs 1`` at the
seed commit and this file's legacy leg, taken on the same machine —
and the headline speedups are reported against the seed-equivalent
time ``legacy_seconds * seed_factor``.  Wall-clock ratios between two
pure-Python single-thread runs transfer across machines far better
than absolute seconds do, which is what makes the frozen factor a
sound reference.

The floors (warm >= 3x seed, cold >= 1.5x seed) are this PR's
acceptance bars; the committed baseline also turns them into a
regression gate — a change may not lose more than ``tolerance``
against the recorded speedups.
"""

import json
import time
from pathlib import Path

from repro.frontend import run_program
from repro.frontend import trace_cache as tc
from repro.frontend.trace_cache import TraceCache, clear_memory_cache
from repro.multiscalar import MultiscalarConfig, MultiscalarSimulator, make_policy
from repro.workloads import get_workload, suite

#: Figure 5's cell grid: the speedup must hold on the real experiment,
#: not on a flattering subset.
WORKLOADS = tuple(w.name for w in suite("specint92"))
STAGE_COUNTS = (4, 8)
POLICIES = ("never", "always", "wait", "psync")
SCALE = "test"

BASELINE_PATH = Path(__file__).resolve().parent / "hotpath_baseline.json"


def _simulate(trace, scheduler, share_index, kernel=""):
    total_cycles = 0
    for stages in STAGE_COUNTS:
        for policy_name in POLICIES:
            sim = MultiscalarSimulator(
                trace,
                MultiscalarConfig(stages=stages, scheduler=scheduler, kernel=kernel),
                make_policy(policy_name),
                share_index=share_index,
            )
            total_cycles += sim.run().cycles
    return total_cycles


def _leg_legacy():
    """Fresh interpretation, per-simulator index, per-cycle scan."""
    total = 0
    for name in WORKLOADS:
        trace = run_program(get_workload(name).program(scale=SCALE))
        total += _simulate(trace, scheduler="cycle", share_index=False)
    return total


def _leg_cached(cache_root):
    """Trace cache + shared columnar index + event scheduler."""
    cache = TraceCache(cache_root)
    total = 0
    for name in WORKLOADS:
        trace = cache.get_or_run(get_workload(name).program(scale=SCALE))
        total += _simulate(trace, scheduler="event", share_index=True)
    return total


def _leg_batched(cache_root):
    """The warm configuration under the columnar batched kernel."""
    cache = TraceCache(cache_root)
    total = 0
    for name in WORKLOADS:
        trace = cache.get_or_run(get_workload(name).program(scale=SCALE))
        total += _simulate(trace, scheduler="event", share_index=True, kernel="batched")
    return total


def test_hotpath_speedups(benchmark, bench_record, tmp_path):
    saved_memory = dict(tc._MEMORY)
    timings = {}
    cycles = {}

    def run_legs():
        start = time.perf_counter()
        cycles["legacy"] = _leg_legacy()
        timings["legacy"] = time.perf_counter() - start

        clear_memory_cache()
        start = time.perf_counter()
        cycles["cold"] = _leg_cached(tmp_path / "traces")
        timings["cold"] = time.perf_counter() - start

        clear_memory_cache()  # drop memory, keep the warm disk layer
        start = time.perf_counter()
        cycles["warm"] = _leg_cached(tmp_path / "traces")
        timings["warm"] = time.perf_counter() - start

        # kernel A/B over fully-hot state: the memory cache and shared
        # index survive from the warm leg, so both passes below time
        # the issue loop alone, nothing else
        start = time.perf_counter()
        cycles["event_hot"] = _leg_cached(tmp_path / "traces")
        timings["event_hot"] = time.perf_counter() - start

        start = time.perf_counter()
        cycles["batched"] = _leg_batched(tmp_path / "traces")
        timings["batched"] = time.perf_counter() - start
        return timings

    try:
        benchmark.pedantic(run_legs, rounds=1, iterations=1)
    finally:
        tc._MEMORY.clear()
        tc._MEMORY.update(saved_memory)

    # the optimized paths must be invisible in the simulated numbers
    assert (
        cycles["legacy"]
        == cycles["cold"]
        == cycles["warm"]
        == cycles["event_hot"]
        == cycles["batched"]
    )

    baseline = json.loads(BASELINE_PATH.read_text())
    tolerance = baseline["tolerance"]
    seed_factor = baseline["seed_factor"]

    seed_equivalent = timings["legacy"] * seed_factor
    warm_speedup = seed_equivalent / timings["warm"]
    cold_speedup = seed_equivalent / timings["cold"]
    batched_speedup = timings["event_hot"] / timings["batched"]

    warm_floor = max(3.0, baseline["warm_speedup"] / tolerance)
    cold_floor = max(1.5, baseline["cold_speedup"] / tolerance)
    batched_floor = max(1.3, baseline["batched_speedup"] / tolerance)

    bench_record(
        timings["legacy"]
        + timings["cold"]
        + timings["warm"]
        + timings["event_hot"]
        + timings["batched"],
        cached=False,
        hotpath={
            "legacy_seconds": round(timings["legacy"], 3),
            "seed_equivalent_seconds": round(seed_equivalent, 3),
            "cold_seconds": round(timings["cold"], 3),
            "warm_seconds": round(timings["warm"], 3),
            "event_hot_seconds": round(timings["event_hot"], 3),
            "batched_seconds": round(timings["batched"], 3),
            "warm_speedup": round(warm_speedup, 2),
            "cold_speedup": round(cold_speedup, 2),
            "batched_speedup": round(batched_speedup, 2),
            "warm_floor": round(warm_floor, 2),
            "cold_floor": round(cold_floor, 2),
            "batched_floor": round(batched_floor, 2),
            "total_cycles": cycles["legacy"],
        },
    )
    print()
    print(
        "hot path: legacy %.2fs (seed-equivalent %.2fs), "
        "cold %.2fs (%.2fx), warm %.2fs (%.2fx), "
        "hot event %.2fs vs batched %.2fs (%.2fx)"
        % (
            timings["legacy"],
            seed_equivalent,
            timings["cold"],
            cold_speedup,
            timings["warm"],
            warm_speedup,
            timings["event_hot"],
            timings["batched"],
            batched_speedup,
        )
    )

    assert warm_speedup >= warm_floor, (
        "warm hot path regressed: %.2fx < %.2fx floor" % (warm_speedup, warm_floor)
    )
    assert cold_speedup >= cold_floor, (
        "cold hot path regressed: %.2fx < %.2fx floor" % (cold_speedup, cold_floor)
    )
    assert batched_speedup >= batched_floor, (
        "batched kernel regressed vs event: %.2fx < %.2fx floor"
        % (batched_speedup, batched_floor)
    )
