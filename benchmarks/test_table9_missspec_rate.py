"""Table 9: mis-speculations per committed load, base vs mechanism."""

from conftest import BENCH_SCALE, run_once

from repro.experiments import table9_missspec_rates


def test_table9_missspec_rate(benchmark):
    table = run_once(benchmark, table9_missspec_rates, BENCH_SCALE)
    # paper shape: the mechanism cuts the rate by about an order of
    # magnitude at both window sizes
    for stages in (4, 8):
        always = [r for r in table.rows if r[0] == stages and r[1] == "ALWAYS"][0]
        mech = [r for r in table.rows if r[0] == stages and r[1] != "ALWAYS"][0]
        assert sum(mech[2:]) * 5 <= sum(always[2:]) + 1e-9
