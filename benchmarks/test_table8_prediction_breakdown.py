"""Table 8: dependence-prediction breakdown for SYNC and ESYNC."""

import pytest
from conftest import BENCH_SCALE, run_once

from repro.experiments import table8_prediction_breakdown


def test_table8_prediction_breakdown(benchmark):
    table = run_once(benchmark, table8_prediction_breakdown, BENCH_SCALE)
    # percentages are well-formed per benchmark and predictor
    for predictor in ("SYNC", "ESYNC"):
        for name in table.columns[2:]:
            idx = list(table.columns).index(name)
            total = sum(r[idx] for r in table.rows if r[0] == predictor)
            assert total == pytest.approx(100.0, abs=1.0)
