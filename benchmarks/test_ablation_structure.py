"""Ablation: combined MDPT/MDST (one sync slot per static dependence
per stage, the paper's evaluated organization) versus a split MDST
pool (Section 4's framework)."""

from conftest import BENCH_SCALE, run_once

from repro.experiments import ExperimentTable, load_traces
from repro.multiscalar import MultiscalarConfig, MultiscalarSimulator, MechanismPolicy


def ablation_structure(scale):
    traces = load_traces("specint92", scale)
    table = ExperimentTable(
        "ablation-structure",
        "unified vs split synchronization structure (8 stages)",
        ["benchmark", "unified_cycles", "split_cycles", "unified_ms", "split_ms"],
    )
    for name in sorted(traces):
        results = {}
        for structure in ("unified", "split"):
            policy = MechanismPolicy(predictor="esync", structure=structure)
            sim = MultiscalarSimulator(
                traces[name], MultiscalarConfig(stages=8), policy
            )
            results[structure] = sim.run()
        table.add_row(
            name,
            results["unified"].cycles,
            results["split"].cycles,
            results["unified"].mis_speculations,
            results["split"].mis_speculations,
        )
    return table


def test_ablation_structure(benchmark):
    table = run_once(benchmark, ablation_structure, BENCH_SCALE)
    # the two organizations deliver comparable performance (within 15%)
    for row in table.rows:
        assert abs(row[1] - row[2]) <= 0.15 * max(row[1], row[2]) + 50, row
