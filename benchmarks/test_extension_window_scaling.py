"""Extension bench: the paper's central claim swept to wider windows.

Sweeps 2..16 stages and reports the PSYNC-over-ALWAYS speedup: the
benefit of accurate dependence speculation must grow with the window.
"""

from conftest import BENCH_SCALE, run_once

from repro.experiments import extension_window_scaling


def test_extension_window_scaling(benchmark):
    table = run_once(benchmark, extension_window_scaling, BENCH_SCALE)
    means = table.column("mean")
    # the mean gap at the widest window clearly exceeds the narrowest
    assert means[-1] > means[0]
    # and the trend holds beyond the paper's 8-stage endpoint
    assert means[-1] >= means[-2] - 3.0
