"""Table 6: Multiscalar mis-speculations under blind speculation."""

from conftest import BENCH_SCALE, run_once

from repro.experiments import table6_multiscalar_missspec


def test_table6_multiscalar_missspec(benchmark):
    table = run_once(benchmark, table6_multiscalar_missspec, BENCH_SCALE)
    assert sum(table.rows[0][1:]) > 0
    assert sum(table.rows[1][1:]) > 0
