"""Figure 7: SPEC95 speedups over ALWAYS on an 8-stage Multiscalar."""

from conftest import BENCH_SCALE, run_once

from repro.experiments import figure7_spec95_speedups


def test_figure7_spec95_speedups(benchmark):
    table = run_once(benchmark, figure7_spec95_speedups, BENCH_SCALE)
    assert len(table.rows) == 18
    for name in ("swim", "mgrid", "turb3d"):
        assert abs(table.cell(name, "ESYNC")) < 3.0, name   # nothing to gain
    for name in ("su2cor", "fpppp"):
        gap = table.cell(name, "PSYNC") - table.cell(name, "ESYNC")
        assert gap > 3.0, name                              # falls short of ideal
