"""Table 2: functional-unit latencies (the simulated configuration)."""

from conftest import run_once

from repro.experiments import table2_fu_latencies


def test_table2_configuration(benchmark):
    table = run_once(benchmark, table2_fu_latencies)
    assert len(table.rows) == 12
    latency = dict(zip(table.column("functional unit"), table.column("latency (cycles)")))
    assert latency["simple-int"] < latency["complex-int"]
    assert latency["fp-div-sp"] < latency["fp-div-dp"]
