"""Figure 6: SYNC / ESYNC / PSYNC speedups over blind speculation."""

from conftest import BENCH_SCALE, run_once

from repro.experiments import figure6_mechanism_speedups


def test_figure6_mechanism_speedups(benchmark):
    table = run_once(benchmark, figure6_mechanism_speedups, BENCH_SCALE)
    for row in table.rows:
        _stages, name, _ipc, sync, esync, psync = row
        assert esync >= sync - 1.0, row     # ESYNC never loses to SYNC
        assert esync <= psync + 2.0, row    # bounded by the ideal
        if name == "compress":
            assert esync > sync + 5.0, row  # the path-dependence payoff
