"""Extension bench: VSYNC — value-predict dependence-likely loads
(paper Section 6's suggested combination of the two forms of data
speculation)."""

from conftest import BENCH_SCALE, run_once

from repro.experiments import ExperimentTable, load_traces
from repro.multiscalar import MultiscalarConfig, MultiscalarSimulator, make_policy
from repro.workloads import get_workload


def extension_value_prediction(scale):
    table = ExperimentTable(
        "extension-vsync",
        "ESYNC vs VSYNC vs PSYNC cycles (8 stages); vms = value mis-speculations",
        ["benchmark", "ESYNC", "VSYNC", "PSYNC", "vms"],
    )
    names = sorted(load_traces("specint92", scale)) + ["micro-recurrence-d1"]
    for name in names:
        trace = get_workload(name).trace(scale)
        row = [name]
        vms = 0
        for policy_name in ("esync", "vsync", "psync"):
            sim = MultiscalarSimulator(
                trace, MultiscalarConfig(stages=8), make_policy(policy_name)
            )
            stats = sim.run()
            row.append(stats.cycles)
            if policy_name == "vsync":
                vms = stats.value_mis_speculations
        row.append(vms)
        table.add_row(*row)
    return table


def test_extension_value_prediction(benchmark):
    table = run_once(benchmark, extension_value_prediction, BENCH_SCALE)
    # value prediction breaks the dataflow limit on the stride kernel
    row = table.row("micro-recurrence-d1")
    assert row[2] < row[3]  # VSYNC < PSYNC
    # and never catastrophically hurts the SPECint92-like suite
    for row in table.rows:
        esync, vsync = row[1], row[2]
        assert vsync <= esync * 1.25 + 50, row
