"""Table 3: unrealistic OoO model — mis-speculations vs window size."""

from conftest import BENCH_SCALE, run_once

from repro.experiments import table3_window_missspec


def test_table3_window_missspec(benchmark):
    table = run_once(benchmark, table3_window_missspec, BENCH_SCALE)
    # paper shape: counts grow (weakly) with the window for every benchmark
    for name in table.columns[1:]:
        counts = table.column(name)
        assert counts == sorted(counts), name
        assert counts[-1] > 0, name
