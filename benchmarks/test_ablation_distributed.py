"""Ablation: distributed MDPT/MDST copies (paper Section 4.4.5).

The distributed organization trades broadcast traffic for local lookup
bandwidth.  This bench replays each benchmark's synchronization
protocol stream through the distributed structure and reports the
broadcast/lookup ratio — the quantity that decides whether the
organization is worthwhile.
"""

from conftest import BENCH_SCALE, run_once

from repro.core import DistributedSynchronization
from repro.experiments import ExperimentTable, load_traces
from repro.multiscalar import MultiscalarConfig, MultiscalarSimulator
from repro.multiscalar.policies import MechanismPolicy


class DistributedMechanismPolicy(MechanismPolicy):
    """The mechanism running over distributed table copies."""

    def bind(self, sim):
        SuperBind = super()
        SuperBind.bind(sim)
        # replace the centralized engine with the distributed facade,
        # adapting the call signatures (the local stage is the task's)
        stages = sim.config.stages
        dist = DistributedSynchronization(
            stages, capacity=self.capacity, predictor=self.predictor_name
        )
        policy = self

        class _Adapter:
            mdpt = dist.copies[0].mdpt
            mdst = dist.copies[0].mdst

            @staticmethod
            def load_request(load_pc, instance, ldid, task_pc_of=None):
                stage = policy.sim.trace[ldid].task_id % stages
                return dist.load_request(stage, load_pc, instance, ldid, task_pc_of)

            @staticmethod
            def store_request(store_pc, instance, stid=None, task_pc=None):
                stage = policy.sim.trace[stid].task_id % stages
                return dist.store_request(stage, store_pc, instance, stid, task_pc)

            @staticmethod
            def release_load(ldid):
                stage = policy.sim.trace[ldid].task_id % stages
                return dist.release_load(stage, ldid)

            record_mis_speculation = staticmethod(dist.record_mis_speculation)
            squash = staticmethod(dist.squash)
            reward_pair = staticmethod(dist.reward_pair)
            penalize_pair = staticmethod(dist.penalize_pair)

        self.engine = _Adapter()
        self.distributed = dist


def ablation_distributed(scale):
    traces = load_traces("specint92", scale)
    table = ExperimentTable(
        "ablation-distributed",
        "distributed vs centralized structures (8 stages, SYNC predictor)",
        ["benchmark", "central_cycles", "dist_cycles", "broadcasts", "local_lookups"],
    )
    for name in sorted(traces):
        central = MechanismPolicy(predictor="sync")
        c_stats = MultiscalarSimulator(
            traces[name], MultiscalarConfig(stages=8), central
        ).run()
        dist_policy = DistributedMechanismPolicy(predictor="sync")
        d_stats = MultiscalarSimulator(
            traces[name], MultiscalarConfig(stages=8), dist_policy
        ).run()
        dist = dist_policy.distributed
        table.add_row(name, c_stats.cycles, d_stats.cycles, dist.broadcasts, dist.local_lookups)
    return table


def test_ablation_distributed(benchmark):
    table = run_once(benchmark, ablation_distributed, BENCH_SCALE)
    for row in table.rows:
        name, central, dist, broadcasts, lookups = row
        # the distributed organization is a bandwidth optimization: the
        # timing must stay close to the centralized structure
        assert abs(central - dist) <= 0.10 * max(central, dist) + 50, row
        # broadcasts are a small fraction of local traffic
        assert broadcasts <= lookups, row
