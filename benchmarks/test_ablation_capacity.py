"""Ablation: MDPT capacity sweep.

The paper attributes su2cor's and fpppp's shortfall to a dependence
working set exceeding the 64-entry structure and suggests increasing
the capacity as one fix — this bench measures exactly that.
"""

from conftest import BENCH_SCALE, run_once

from repro.experiments import ExperimentTable, load_traces
from repro.multiscalar import MultiscalarConfig, MultiscalarSimulator, MechanismPolicy

CAPACITIES = (16, 64, 256)


def ablation_capacity(scale):
    traces = {}
    traces.update(load_traces("specfp95", scale))
    picks = ("su2cor", "fpppp", "tomcatv")
    table = ExperimentTable(
        "ablation-capacity",
        "mechanism cycles by MDPT capacity (8 stages)",
        ["benchmark"] + ["cap%d" % c for c in CAPACITIES] + ["ms@64"],
    )
    for name in picks:
        row = [name]
        ms64 = None
        for cap in CAPACITIES:
            policy = MechanismPolicy(predictor="sync", capacity=cap)
            sim = MultiscalarSimulator(
                traces[name], MultiscalarConfig(stages=8), policy
            )
            stats = sim.run()
            row.append(stats.cycles)
            if cap == 64:
                ms64 = stats.mis_speculations
        row.append(ms64)
        table.add_row(*row)
    return table


def test_ablation_capacity(benchmark):
    table = run_once(benchmark, ablation_capacity, BENCH_SCALE)
    # su2cor (96 live static pairs) benefits from growing past 64 entries
    row = table.row("su2cor")
    assert row[3] <= row[1]  # cap256 no slower than cap16
