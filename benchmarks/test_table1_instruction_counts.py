"""Table 1: dynamic committed instruction counts per benchmark."""

from conftest import BENCH_SCALE, run_once

from repro.experiments import table1_instruction_counts


def test_table1_instruction_counts(benchmark):
    table = run_once(benchmark, table1_instruction_counts, BENCH_SCALE)
    assert len(table.rows) == 23
    assert all(count > 0 for count in table.column("instructions"))
