"""Table 4: static dependences covering 99.9% of mis-speculations."""

from conftest import BENCH_SCALE, run_once

from repro.experiments import table4_static_coverage


def test_table4_static_coverage(benchmark):
    table = run_once(benchmark, table4_static_coverage, BENCH_SCALE)
    # paper shape: the dominating static pairs stay few even at WS=512
    widest = table.rows[-1]
    assert all(pairs <= 200 for pairs in widest[1:])
