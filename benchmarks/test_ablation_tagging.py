"""Ablation: dependence-distance tagging vs data-address tagging.

Section 3 of the paper discusses both handles for naming dynamic
dependence edges and evaluates the distance scheme.  This bench runs
both on the kernels where the choice matters: compress (the producing
store lies on a specific path) and sc (the recurrence address changes
every instance, which favours distance tags; a constant-address global
would favour address tags).
"""

from conftest import BENCH_SCALE, run_once

from repro.experiments import ExperimentTable, load_traces
from repro.multiscalar import MultiscalarConfig, MultiscalarSimulator, MechanismPolicy


def _run(trace, tagging):
    policy = MechanismPolicy(predictor="sync", tagging=tagging)
    sim = MultiscalarSimulator(trace, MultiscalarConfig(stages=8), policy)
    return sim.run()


def ablation_tagging(scale):
    traces = load_traces("specint92", scale)
    table = ExperimentTable(
        "ablation-tagging",
        "cycles and mis-speculations: distance vs address tagging (8 stages)",
        ["benchmark", "dist_cycles", "dist_ms", "addr_cycles", "addr_ms"],
    )
    for name in sorted(traces):
        dist = _run(traces[name], "distance")
        addr = _run(traces[name], "address")
        table.add_row(name, dist.cycles, dist.mis_speculations, addr.cycles, addr.mis_speculations)
    return table


def test_ablation_tagging(benchmark):
    table = run_once(benchmark, ablation_tagging, BENCH_SCALE)
    # both taggings synchronize: mis-speculations stay far below the
    # dependent-load counts for every benchmark
    for row in table.rows:
        assert row[2] < 500 and row[4] < 500, row
