"""Ablation: predictor configuration (counter width / threshold /
always-sync), paper Section 4.4.1.

The always-sync predictor (the "optional field omitted" baseline)
over-synchronizes path-dependent programs; wider counters adapt more
slowly but resist transient noise.
"""

from conftest import BENCH_SCALE, run_once

from repro.experiments import ExperimentTable, load_traces
from repro.multiscalar import MultiscalarConfig, MultiscalarSimulator, make_policy

CONFIGS = (
    ("always-sync", {}),
    ("sync", {"bits": 1, "threshold": 1}),
    ("sync", {"bits": 3, "threshold": 3}),   # the paper's configuration
    ("sync", {"bits": 4, "threshold": 8}),
)


def ablation_predictor(scale):
    traces = load_traces("specint92", scale)
    table = ExperimentTable(
        "ablation-predictor",
        "cycles by predictor configuration (4 stages)",
        ["benchmark"] + ["%s%s" % (n, k.get("bits", "")) for n, k in CONFIGS],
    )
    for name in sorted(traces):
        row = [name]
        for policy_name, kwargs in CONFIGS:
            policy = make_policy(policy_name, **kwargs)
            sim = MultiscalarSimulator(
                traces[name], MultiscalarConfig(stages=4), policy
            )
            row.append(sim.run().cycles)
        table.add_row(*row)
    return table


def test_ablation_predictor(benchmark):
    table = run_once(benchmark, ablation_predictor, BENCH_SCALE)
    # the paper's 3-bit/threshold-3 configuration is never the worst
    for row in table.rows:
        cycles = row[1:]
        assert cycles[2] <= max(cycles) + 1, row
