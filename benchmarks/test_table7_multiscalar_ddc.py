"""Table 7: DDC miss rates over the 8-stage Multiscalar stream."""

from conftest import BENCH_SCALE, run_once

from repro.experiments import table7_multiscalar_ddc


def test_table7_multiscalar_ddc(benchmark):
    table = run_once(benchmark, table7_multiscalar_ddc, BENCH_SCALE)
    # paper shape: miss rate never increases with DDC size, and a
    # 1024-entry DDC captures virtually all static dependences
    for name in table.columns[1:]:
        rates = table.column(name)
        assert all(b <= a + 1e-9 for a, b in zip(rates, rates[1:])), name
